// Observability overhead through the per-syscall dispatch pipeline, emitted
// as BENCH_observability.json. This bench is SELF-GATING: it exits nonzero
// when the always-on budget is blown, so CI runs it as a hard check.
//
// Configurations (gate always on, stats always counted):
//   tracing-off   tracer master switch off — the dispatch-word fast path
//                 with every observability bit clear. The baseline; within
//                 noise of BENCH_syscall_gate's stats config by construction
//                 (same gate, no tracer work).
//   default       the "always-on" production shape: tracer on, but the
//                 traced set narrowed to the control-plane syscalls the
//                 paper's operator actually audits (mount/umount/execve/
//                 clone/setuid-class), 1-in-16 head sampling, exemplars on.
//                 Data-plane syscalls (stat, getpid) resolve a dispatch word
//                 with the trace bit clear. BUDGET: stat-class overhead <5%.
//   sampled-all   every syscall traced at a 1-in-16 head-sampling rate —
//                 full-coverage statistical tracing.
//   all-on        every syscall traced, every event kept (the pre-dispatch
//                 "before" row; was ~10% on stat, ~240% on getpid).
//
// Workloads: getpid(2) (null syscall), stat(2) (path resolution — the
// paper's stat-class row), and a policy-denied mount(2) (hook-heaviest
// path, and always in the traced set under `default`).
//
// A macro section runs the web-serve mix with the layer profiler armed and
// enforces the attribution identity: summed per-layer self time within 10%
// of the end-to-end root time. The metrics blob embedded in the JSON is the
// size-bounded sorted excerpt (MetricsRegistry::JsonExcerpt), not the full
// export, so bench diffs stay reviewable.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/sim/system.h"
#include "src/workload/workload.h"

namespace protego {
namespace {

// The control-plane syscalls the `default` config keeps in the traced set.
constexpr Sysno kControlPlane[] = {
    Sysno::kMount,    Sysno::kUmount2, Sysno::kExecve,    Sysno::kClone,
    Sysno::kSetuid,   Sysno::kSetgid,  Sysno::kSetreuid,  Sysno::kSetgroups,
    Sysno::kUnshare,  Sysno::kSeccomp,
};

struct TraceConfig {
  const char* name;
  bool master;        // tracer master switch
  bool trace_all;     // true = all syscalls traced, false = control-plane set
  uint32_t sample_rate;  // head-sampling rate on every point (0 = keep all)
};

constexpr TraceConfig kConfigs[] = {
    {"tracing-off", false, true, 0},
    {"default", true, false, 16},
    {"sampled-all", true, true, 16},
    {"all-on", true, true, 0},
};

void Apply(Kernel& k, const TraceConfig& cfg) {
  Tracer& tracer = k.tracer();
  tracer.set_enabled(cfg.master);
  for (size_t i = 0; i < kTracepointCount; ++i) {
    tracer.set_point_enabled(static_cast<TracepointId>(i), true);
  }
  tracer.set_sample_seed(42);
  tracer.set_all_sample_rates(cfg.sample_rate);
  SyscallGate& gate = k.syscalls();
  gate.SetAllSyscallsTraced(cfg.trace_all);
  if (!cfg.trace_all) {
    for (Sysno nr : kControlPlane) {
      gate.SetSyscallTraced(nr, true);
    }
  }
}

template <typename Fn>
double TimeOnePass(Fn&& fn, int iters) {
  uint64_t t0 = MonotonicNanos();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  uint64_t t1 = MonotonicNanos();
  return static_cast<double>(t1 - t0) / iters;
}

struct Row {
  std::string workload;
  std::string config;
  double ns_per_op = 0;
  double overhead_pct = 0;  // vs the tracing-off row of the same workload
};

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_observability.json";
  constexpr int kIters = 200000;
  constexpr int kReps = 9;

  SimSystem sys(SimMode::kProtego);
  Task& task = sys.Login("alice");
  Kernel& k = sys.kernel();

  struct Workload {
    const char* name;
    int iters;
    std::function<void()> op;
  };
  volatile int sink = 0;
  std::vector<Workload> workloads;
  workloads.push_back({"getpid", kIters, [&] { sink = k.GetPid(task); }});
  workloads.push_back({"stat", kIters / 10, [&] { (void)k.Stat(task, "/etc/hosts"); }});
  workloads.push_back(
      {"mount-denied", kIters / 10,
       [&] { (void)k.Mount(task, "/dev/sda1", "/mnt", "ext4", {}); }});

  std::vector<Row> rows;
  double default_stat_overhead = 0;
  constexpr size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);
  for (const Workload& w : workloads) {
    // Interleave the configs WITHIN each rep (off, default, sampled, all-on,
    // off, default, ...) rather than measuring each config's reps back to
    // back: clock-speed drift over the run then hits every config equally,
    // and best-of-N reps picks each config's pass from the same fast
    // stretches. Measured sequentially, a 5% frequency wobble reads as a 5%
    // "overhead" on whichever config drew the slow block.
    double best[kNumConfigs];
    std::fill(best, best + kNumConfigs, 1e18);
    for (int r = 0; r < kReps; ++r) {
      for (size_t c = 0; c < kNumConfigs; ++c) {
        Apply(k, kConfigs[c]);
        k.syscalls().ClearTrace();  // ring churn priced, retention equalized
        // Per-pass warmup: settles the dispatch-word rebuild the config
        // change just invalidated and re-touches caches after the previous
        // config's pass.
        for (int i = 0; i < w.iters / 8; ++i) {
          w.op();
        }
        best[c] = std::min(best[c], TimeOnePass(w.op, w.iters));
      }
    }
    const double baseline = best[0];  // kConfigs[0] is tracing-off
    for (size_t c = 0; c < kNumConfigs; ++c) {
      Row row;
      row.workload = w.name;
      row.config = kConfigs[c].name;
      row.ns_per_op = best[c];
      row.overhead_pct =
          baseline > 0 ? (best[c] - baseline) / baseline * 100.0 : 0;
      rows.push_back(row);
      if (row.workload == "stat" && row.config == "default") {
        default_stat_overhead = row.overhead_pct;
      }
      std::printf("%-12s %-12s %8.2f ns/op  %+7.1f%%\n", w.name,
                  kConfigs[c].name, best[c], row.overhead_pct);
    }
  }
  (void)sink;
  Apply(k, kConfigs[3]);  // restore boot defaults (everything on, no sampling)

  // --- Macro attribution: where does the overhead go? ------------------------
  workload::WorkloadSpec spec;
  spec.mix = workload::Mix::kWebServe;
  spec.tasks = 4;
  spec.total_ops = 40000;
  spec.seed = 1;
  spec.trace = true;
  spec.sample_rate = 16;
  spec.profile = true;
  workload::MixReport macro = workload::RunWorkload(spec, SimMode::kProtego);
  const double attrib_ratio =
      macro.attrib_root_ns > 0
          ? static_cast<double>(macro.attrib_self_ns) /
                static_cast<double>(macro.attrib_root_ns)
          : 0;
  std::printf("web-serve attribution: self=%llu ns root=%llu ns ratio=%.4f "
              "(sampled_out=%llu)\n",
              (unsigned long long)macro.attrib_self_ns,
              (unsigned long long)macro.attrib_root_ns, attrib_ratio,
              (unsigned long long)macro.trace_sampled_out);

  // --- Self-gating checks ----------------------------------------------------
  std::vector<Check> checks;
  {
    Check c;
    c.name = "default_stat_overhead_lt_5pct";
    c.pass = default_stat_overhead < 5.0;
    c.detail = "default-config stat overhead " +
               std::to_string(default_stat_overhead) + "% (budget 5%)";
    checks.push_back(c);
  }
  {
    Check c;
    c.name = "web_serve_attribution_within_10pct";
    c.pass = attrib_ratio > 0.9 && attrib_ratio < 1.1;
    c.detail = "summed layer self/root = " + std::to_string(attrib_ratio) +
               " (budget 0.9..1.1)";
    checks.push_back(c);
  }

  bool all_pass = true;
  for (const Check& c : checks) {
    std::printf("check %-36s %s  %s\n", c.name.c_str(), c.pass ? "PASS" : "FAIL",
                c.detail.c_str());
    all_pass = all_pass && c.pass;
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"observability\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"reps\": %d,\n  \"sample_rate\": 16,\n  \"sample_seed\": 42,\n",
               kReps);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_pct\": %.1f}%s\n",
                 rows[i].workload.c_str(), rows[i].config.c_str(), rows[i].ns_per_op,
                 rows[i].overhead_pct, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"attribution\": {\"mix\": \"web-serve\", "
               "\"self_ns\": %llu, \"root_ns\": %llu, \"ratio\": %.4f, "
               "\"sampled_out\": %llu},\n",
               (unsigned long long)macro.attrib_self_ns,
               (unsigned long long)macro.attrib_root_ns, attrib_ratio,
               (unsigned long long)macro.trace_sampled_out);
  std::fprintf(f, "  \"checks\": [\n");
  for (size_t i = 0; i < checks.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"pass\": %s, \"detail\": \"%s\"}%s\n",
                 checks[i].name.c_str(), checks[i].pass ? "true" : "false",
                 checks[i].detail.c_str(), i + 1 < checks.size() ? "," : "");
  }
  // Size-bounded, sorted metrics excerpt — reviewable in a diff, linted by
  // the test suite over the full export.
  std::fprintf(f, "  ],\n  \"metrics_excerpt\": %s\n}\n",
               k.metrics().JsonExcerpt(6).c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return all_pass ? 0 : 1;
}
