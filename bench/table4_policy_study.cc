// Table 4: the setuid policy study — prints each interface's policy
// mismatch and Protego's approach, and EXECUTES the per-interface scenario
// checks against a live Protego system.

#include <cstdio>

#include "src/study/policy_matrix.h"

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 4 reproduction: setuid policy study ===\n");
  int pass = 0;
  for (const PolicyMatrixRow& row : PolicyMatrix()) {
    std::printf("\n--- %s (used by: %s) ---\n", row.interface_name.c_str(),
                row.used_by.c_str());
    std::printf("  kernel policy:   %s\n", row.kernel_policy.c_str());
    std::printf("  system policy:   %s\n", row.system_policy.c_str());
    std::printf("  concern:         %s\n", row.security_concern.c_str());
    std::printf("  Protego:         %s\n", row.protego_approach.c_str());
    SimSystem sys(SimMode::kProtego);
    PolicyScenarioResult result = row.check(sys);
    std::printf("  scenario:        %s\n", result.detail.c_str());
    std::printf("  verdict:         permitted-case %s, forbidden-case %s\n",
                result.permitted_case_ok ? "WORKS" : "BROKEN",
                result.forbidden_case_ok ? "REFUSED" : "NOT REFUSED");
    if (result.permitted_case_ok && result.forbidden_case_ok) {
      ++pass;
    }
  }
  std::printf("\n%d/%zu interfaces enforce the system policy in the kernel.\n", pass,
              PolicyMatrix().size());
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
