// Table 7: functional testing — runs the equivalence suite on both system
// configurations, reports transcript equivalence per scenario, and prints
// the block-coverage (gcov analog) achieved on each instrumented setuid
// command-line binary.

#include <cstdio>

#include "src/study/cves.h"
#include "src/study/functional.h"
#include "src/userland/coverage.h"

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 7 reproduction: functional testing & coverage ===\n\n");

  Coverage::Get().ResetHits();
  std::vector<EquivalenceResult> results = RunEquivalenceSuite();
  // The exploit corpus is part of the functional workload too (it drives
  // the utilities' historically vulnerable code paths on both systems).
  {
    SimSystem linux_sys(SimMode::kLinux);
    (void)RunCorpus(linux_sys);
    SimSystem protego_sys(SimMode::kProtego);
    (void)RunCorpus(protego_sys);
  }

  std::printf("--- Behavioural equivalence (Linux vs Protego transcripts) ---\n");
  int equivalent = 0;
  for (const EquivalenceResult& r : results) {
    std::printf("  %-24s %s\n", r.name.c_str(), r.equivalent ? "EQUIVALENT" : "DIFFERS");
    if (r.equivalent) {
      ++equivalent;
    }
  }
  std::printf("  => %d/%zu scenarios byte-identical after normalization\n\n", equivalent,
              results.size());

  std::printf("--- Block coverage of the instrumented binaries (paper: all > 90%%) ---\n");
  std::printf("%-12s %10s   %s\n", "Binary", "Coverage%", "missed blocks");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const std::string& binary : Coverage::Get().Binaries()) {
    std::vector<std::string> missed = Coverage::Get().MissedBlocks(binary);
    std::string missed_list;
    for (const std::string& m : missed) {
      if (!missed_list.empty()) {
        missed_list += ",";
      }
      missed_list += m;
    }
    std::printf("%-12s %9.1f%%   %s\n", binary.c_str(), Coverage::Get().Percent(binary),
                missed_list.empty() ? "-" : missed_list.c_str());
  }
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
