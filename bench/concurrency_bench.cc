// Cost of the deterministic scheduler's token hand-off, emitted as
// BENCH_concurrency.json.
//
// The scheduler serializes one OS thread per task through a single hand-off
// token, yielding at every syscall entry. The price of that determinism is
// one mutex + condvar hand-off per context switch, paid only when a
// scheduler is attached — the sequential path (no scheduler) is the
// baseline. Round-robin is the worst case: it switches at EVERY yield, so
// with N > 1 tasks every syscall buys a full thread-to-thread hand-off.
//
// Configurations, each running `tasks * kSyscallsPerTask` getpid(2) calls:
//   sequential    no scheduler attached; task bodies run back-to-back on
//                 the driver thread (the plain PR 1 gate path)
//   scheduled     DetScheduler round-robin, decision recording off
//
// Reported per row: ns per syscall, context switches performed, and the
// derived ns per hand-off ((scheduled - sequential) * syscalls / switches).
// Tracing is off throughout so the hand-off is the only delta.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/conc/scheduler.h"
#include "src/kernel/kernel.h"

namespace protego {
namespace {

constexpr int kSyscallsPerTask = 20000;
constexpr int kReps = 5;

struct Row {
  int tasks = 0;
  double sequential_ns = 0;  // per syscall
  double scheduled_ns = 0;   // per syscall
  uint64_t switches = 0;     // context switches in one scheduled run
  double handoff_ns = 0;     // per context switch
};

std::vector<Task*> MakeTasks(Kernel& kernel, int n) {
  std::vector<Task*> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back(&kernel.CreateTask("bench" + std::to_string(i),
                                       Cred::ForUser(1000 + i, 1000 + i), nullptr));
  }
  return tasks;
}

Row Measure(int num_tasks) {
  Row row;
  row.tasks = num_tasks;
  const double total_syscalls = static_cast<double>(num_tasks) * kSyscallsPerTask;

  double best_seq = 1e18;
  for (int r = 0; r < kReps; ++r) {
    Kernel kernel;
    kernel.tracer().set_enabled(false);
    std::vector<Task*> tasks = MakeTasks(kernel, num_tasks);
    uint64_t t0 = MonotonicNanos();
    for (Task* task : tasks) {
      for (int i = 0; i < kSyscallsPerTask; ++i) {
        (void)kernel.GetPid(*task);
      }
    }
    uint64_t t1 = MonotonicNanos();
    best_seq = std::min(best_seq, (t1 - t0) / total_syscalls);
  }
  row.sequential_ns = best_seq;

  double best_sched = 1e18;
  for (int r = 0; r < kReps; ++r) {
    Kernel kernel;
    kernel.tracer().set_enabled(false);
    std::vector<Task*> tasks = MakeTasks(kernel, num_tasks);
    conc::DetScheduler sched;
    sched.set_mode(conc::SchedMode::kRoundRobin);
    sched.set_record_decisions(false);
    kernel.set_scheduler(&sched);
    for (Task* task : tasks) {
      sched.StartTask(task->pid, [&kernel, task] {
        for (int i = 0; i < kSyscallsPerTask; ++i) {
          (void)kernel.GetPid(*task);
        }
      });
    }
    uint64_t t0 = MonotonicNanos();
    sched.Run();
    uint64_t t1 = MonotonicNanos();
    kernel.set_scheduler(nullptr);
    best_sched = std::min(best_sched, (t1 - t0) / total_syscalls);
    row.switches = sched.steps();
  }
  row.scheduled_ns = best_sched;
  // Initial dispatches are not hand-offs; with one task there are none at
  // all and the per-syscall delta is pure yield bookkeeping.
  uint64_t handoffs = row.switches > static_cast<uint64_t>(num_tasks)
                          ? row.switches - num_tasks
                          : 0;
  row.handoff_ns =
      handoffs > 0 ? (row.scheduled_ns - row.sequential_ns) * total_syscalls / handoffs : 0;
  return row;
}

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_concurrency.json";

  std::vector<Row> rows;
  for (int tasks : {1, 4, 16}) {
    Row row = Measure(tasks);
    rows.push_back(row);
    std::printf("tasks=%-3d sequential %7.1f ns/call  scheduled %8.1f ns/call  "
                "switches %7llu  handoff %8.1f ns\n",
                row.tasks, row.sequential_ns, row.scheduled_ns,
                static_cast<unsigned long long>(row.switches), row.handoff_ns);
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"concurrency\",\n");
  std::fprintf(f, "  \"syscalls_per_task\": %d,\n  \"reps\": %d,\n  \"rows\": [\n",
               kSyscallsPerTask, kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"tasks\": %d, \"sequential_ns_per_syscall\": %.1f, "
                 "\"scheduled_ns_per_syscall\": %.1f, \"context_switches\": %llu, "
                 "\"handoff_ns_per_switch\": %.1f}%s\n",
                 rows[i].tasks, rows[i].sequential_ns, rows[i].scheduled_ns,
                 static_cast<unsigned long long>(rows[i].switches), rows[i].handoff_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
