// Null-syscall (getpid) cost through the unified entry path, across gate
// configurations, emitted as BENCH_syscall_gate.json so the performance
// trajectory of the entry path is recorded per PR.
//
// Configurations measured:
//   no-gate              gate disabled: the raw body, the pre-refactor cost
//   stats                gate on, wall-clock timing off, tracing off
//   stats+trace-filtered gate on, tracer master ON but the syscall point
//                        filtered out — the per-point check is hoisted before
//                        span bookkeeping and args formatting, so this must
//                        price like `stats`, not like `stats+trace`
//   stats+trace          gate on, tracing on (the default boot config)
//   stats+timing+trace   gate on, everything on (profiling config)
//
// For scale, the same sweep runs over stat(2) — a real (path-resolving)
// syscall — showing what the gate costs on a non-null workload.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/sim/system.h"

namespace protego {
namespace {

struct GateConfig {
  const char* name;
  bool enabled;
  bool timing;
  bool trace;
  bool point_filtered;  // tracer master on, kSyscall point bit off
};

constexpr GateConfig kConfigs[] = {
    {"no-gate", false, false, false, false},
    {"stats", true, false, false, false},
    {"stats+trace-filtered", true, false, true, true},
    {"stats+trace", true, false, true, false},
    {"stats+timing+trace", true, true, true, false},
};

void Apply(SyscallGate& gate, Tracer& tracer, const GateConfig& cfg) {
  gate.set_enabled(cfg.enabled);
  gate.set_wallclock_timing(cfg.timing);
  gate.set_trace_enabled(cfg.trace);
  tracer.set_point_enabled(TracepointId::kSyscall, !cfg.point_filtered);
}

// Best-of-reps median-free timing: run `iters` calls, repeat, keep the
// fastest rep (least scheduler noise).
template <typename Fn>
double NsPerOp(Fn&& fn, int iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

struct Row {
  std::string syscall;
  std::string config;
  double ns_per_op = 0;
  double overhead_pct = 0;  // vs the no-gate row of the same syscall
};

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_syscall_gate.json";
  constexpr int kIters = 200000;
  constexpr int kReps = 7;

  SimSystem sys(SimMode::kProtego);
  Task& task = sys.Login("alice");
  Kernel& k = sys.kernel();
  SyscallGate& gate = sys.syscalls();
  Tracer& tracer = k.tracer();

  std::vector<Row> rows;
  for (const char* which : {"getpid", "stat"}) {
    double baseline = 0;
    for (const GateConfig& cfg : kConfigs) {
      Apply(gate, tracer, cfg);
      double ns;
      if (std::string(which) == "getpid") {
        volatile int sink = 0;
        ns = NsPerOp([&] { sink = k.GetPid(task); }, kIters, kReps);
        (void)sink;
      } else {
        ns = NsPerOp([&] { (void)k.Stat(task, "/etc/hosts"); }, kIters / 10, kReps);
      }
      if (!cfg.enabled) {
        baseline = ns;
      }
      Row row;
      row.syscall = which;
      row.config = cfg.name;
      row.ns_per_op = ns;
      row.overhead_pct = baseline > 0 ? (ns - baseline) / baseline * 100.0 : 0;
      rows.push_back(row);
      std::printf("%-8s %-20s %8.2f ns/op  %+7.1f%%\n", which, cfg.name, ns,
                  row.overhead_pct);
    }
  }
  Apply(gate, tracer, kConfigs[3]);  // restore boot defaults (stats+trace)

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"syscall_gate\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"iters\": %d,\n  \"reps\": %d,\n  \"rows\": [\n", kIters, kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"syscall\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_pct\": %.1f}%s\n",
                 rows[i].syscall.c_str(), rows[i].config.c_str(), rows[i].ns_per_op,
                 rows[i].overhead_pct, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
