// Null-syscall (getpid) cost through the unified entry path, across gate
// configurations, emitted as BENCH_syscall_gate.json so the performance
// trajectory of the entry path is recorded per PR.
//
// Configurations measured:
//   no-gate              gate disabled: the raw body, the pre-refactor cost
//   stats                gate on, wall-clock timing off, tracing off
//   stats+trace-filtered gate on, tracer master ON but the syscall point
//                        filtered out — the per-point check is hoisted before
//                        span bookkeeping and args formatting, so this must
//                        price like `stats`, not like `stats+trace`
//   stats+trace          gate on, tracing on (the default boot config)
//   stats+timing+trace   gate on, everything on (profiling config)
//
// For scale, the same sweep runs over stat(2) — a real (path-resolving)
// syscall — showing what the gate costs on a non-null workload.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/sim/system.h"

namespace protego {
namespace {

struct GateConfig {
  const char* name;
  bool enabled;
  bool timing;
  bool trace;
  bool point_filtered;  // tracer master on, kSyscall point bit off
};

constexpr GateConfig kConfigs[] = {
    {"no-gate", false, false, false, false},
    {"stats", true, false, false, false},
    {"stats+trace-filtered", true, false, true, true},
    {"stats+trace", true, false, true, false},
    {"stats+timing+trace", true, true, true, false},
};

void Apply(SyscallGate& gate, Tracer& tracer, const GateConfig& cfg) {
  gate.set_enabled(cfg.enabled);
  gate.set_wallclock_timing(cfg.timing);
  gate.set_trace_enabled(cfg.trace);
  tracer.set_point_enabled(TracepointId::kSyscall, !cfg.point_filtered);
}

// Best-of-reps median-free timing: run `iters` calls, repeat, keep the
// fastest rep (least scheduler noise).
template <typename Fn>
double NsPerOp(Fn&& fn, int iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

struct Row {
  std::string syscall;
  std::string config;
  double ns_per_op = 0;
  double overhead_pct = 0;  // vs the no-gate row of the same syscall
};

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_syscall_gate.json";
  constexpr int kIters = 200000;
  constexpr int kReps = 7;

  SimSystem sys(SimMode::kProtego);
  Task& task = sys.Login("alice");
  Kernel& k = sys.kernel();
  SyscallGate& gate = sys.syscalls();
  Tracer& tracer = k.tracer();

  std::vector<Row> rows;
  for (const char* which : {"getpid", "stat"}) {
    double baseline = 0;
    for (const GateConfig& cfg : kConfigs) {
      Apply(gate, tracer, cfg);
      double ns;
      if (std::string(which) == "getpid") {
        volatile int sink = 0;
        ns = NsPerOp([&] { sink = k.GetPid(task); }, kIters, kReps);
        (void)sink;
      } else {
        ns = NsPerOp([&] { (void)k.Stat(task, "/etc/hosts"); }, kIters / 10, kReps);
      }
      if (!cfg.enabled) {
        baseline = ns;
      }
      Row row;
      row.syscall = which;
      row.config = cfg.name;
      row.ns_per_op = ns;
      row.overhead_pct = baseline > 0 ? (ns - baseline) / baseline * 100.0 : 0;
      rows.push_back(row);
      std::printf("%-8s %-20s %8.2f ns/op  %+7.1f%%\n", which, cfg.name, ns,
                  row.overhead_pct);
    }
  }
  // Filter sweep: what does the task's seccomp filter itself cost on stat(2)?
  //   filter:none        no filter installed (the stats config above)
  //   filter:flat-bitset classic allow-list: one bitset test per call
  //   filter:predicate-miss  argument-aware filter whose rules target OTHER
  //                      syscalls — stat's has_rules bit is clear, so the
  //                      check must collapse to the same single bitset test
  //                      (the acceptance bar: within a few % of flat-bitset)
  //   filter:predicate-hit   rules ON stat: longest-prefix path classing
  //                      plus rule evaluation on every call, the worst case
  Apply(gate, tracer, kConfigs[1]);  // stats only: isolate filter cost
  const std::vector<Sysno> kStatSet = {Sysno::kStat,  Sysno::kOpen,  Sysno::kRead,
                                       Sysno::kClose, Sysno::kWrite, Sysno::kGetPid,
                                       Sysno::kSeccomp};
  auto predicate_spec = [&](bool rules_on_stat) {
    SeccompFilter::Spec spec;
    for (Sysno nr : kStatSet) {
      spec.allowed.set(static_cast<size_t>(nr));
    }
    spec.path_classes = {{"/etc", 1}, {"/tmp", 2}};
    Sysno target = rules_on_stat ? Sysno::kStat : Sysno::kOpen;
    spec.rules[static_cast<uint16_t>(target)] = {
        {{{kSeccompArgPath, SeccompCmp::kEq, 1, 0}}},
        {{{kSeccompArgPath, SeccompCmp::kEq, 2, 0}}},
    };
    return spec;
  };
  struct FilterConfig {
    const char* name;
    int kind;  // 0 = none, 1 = flat bitset, 2 = predicate miss, 3 = predicate hit
    Task* task = nullptr;
    double best_ns = 1e18;
  };
  std::vector<FilterConfig> filter_cfgs = {{"filter:none", 0},
                                           {"filter:flat-bitset", 1},
                                           {"filter:predicate-miss", 2},
                                           {"filter:predicate-hit", 3}};
  // Filters latch one-way, so every configuration measures a fresh task.
  for (FilterConfig& cfg : filter_cfgs) {
    cfg.task = &sys.Login("alice");
    bool installed = true;
    switch (cfg.kind) {
      case 1:
        installed = k.SeccompSetFilter(*cfg.task, kStatSet).ok();
        break;
      case 2:
        installed = k.SeccompSetFilterSpec(*cfg.task, predicate_spec(false)).ok();
        break;
      case 3:
        installed = k.SeccompSetFilterSpec(*cfg.task, predicate_spec(true)).ok();
        break;
      default:
        break;
    }
    if (!installed) {
      std::fprintf(stderr, "filter install failed for %s\n", cfg.name);
      return 1;
    }
  }
  // Interleave the configs inside each rep (observability_bench style): the
  // overhead ratios below compare measurements taken milliseconds apart, so
  // runner frequency drift cancels instead of landing on one config.
  for (int rep = 0; rep < kReps; ++rep) {
    for (FilterConfig& cfg : filter_cfgs) {
      Task& t = *cfg.task;
      cfg.best_ns =
          std::min(cfg.best_ns,
                   NsPerOp([&] { (void)k.Stat(t, "/etc/hosts"); }, kIters / 10, 1));
    }
  }
  double flat_ns = 0;
  for (const FilterConfig& cfg : filter_cfgs) {
    if (cfg.kind == 1) {
      flat_ns = cfg.best_ns;
    }
    Row row;
    row.syscall = "stat";
    row.config = cfg.name;
    row.ns_per_op = cfg.best_ns;
    row.overhead_pct = flat_ns > 0 ? (cfg.best_ns - flat_ns) / flat_ns * 100.0 : 0;
    rows.push_back(row);
    std::printf("%-8s %-22s %8.2f ns/op  %+7.1f%% vs flat-bitset\n", "stat", cfg.name,
                cfg.best_ns, row.overhead_pct);
  }

  Apply(gate, tracer, kConfigs[3]);  // restore boot defaults (stats+trace)

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"syscall_gate\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"iters\": %d,\n  \"reps\": %d,\n  \"rows\": [\n", kIters, kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"syscall\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_pct\": %.1f}%s\n",
                 rows[i].syscall.c_str(), rows[i].config.c_str(), rows[i].ns_per_op,
                 rows[i].overhead_pct, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
