// Policy-engine cost per LSM hook decision, scan vs. compiled vs. cached,
// across policy-table sizes, emitted as BENCH_policy_engine.json.
//
// Each hook is probed with a fixed request against tables of 16 / 256 / 4096
// entries under four engine configurations:
//   scan                   legacy linear scan, decision cache off (pre-PR-2 cost)
//   compiled               indexed tables (hash / partitioned globs), cache off
//   compiled+cache-forced  indexed tables plus the per-task decision cache,
//                          adaptive small-table bypass disabled (the pre-fix
//                          behavior: the cache probe always runs, which at 16
//                          entries costs MORE than the walk it replaces)
//   compiled+cache         same, with the adaptive bypass left on (the shipped
//                          default: below LsmStack::kCacheBypassThreshold total
//                          rules the cacheable hooks skip the cache)
// The forced/adaptive pair at the 16-entry size is the before/after evidence
// for the small-table regression fix.
//
// Probes are chosen to isolate the table-walk cost: the bind probe matches
// the LAST allocation of its port (allow, no audit call); the mount and
// inode probes match nothing (deny / fall-through, no audit call). All
// verdicts are identical across configurations — only the lookup strategy
// differs.
//
// The hit-heavy probes repeat one request, so the cache rows price a 100%
// hit rate. The inode_permission_miss probe cycles 128 distinct paths
// through the 64-slot per-task cache (~0% hit rate): with the cache forced
// on, every op pays probe + insert on top of the walk — the pure-tax case
// the adaptive bypass eliminates for small tables.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/strings.h"
#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/sudoers.h"
#include "src/sim/system.h"

namespace protego {
namespace {

struct EngineConfig {
  const char* name;
  bool compiled;
  bool cache;
  bool force_cache;  // disable the adaptive small-table bypass
};

constexpr EngineConfig kConfigs[] = {
    {"scan", false, false, false},
    {"compiled", true, false, false},
    {"compiled+cache-forced", true, true, true},
    {"compiled+cache", true, true, false},
};

constexpr int kSizes[] = {16, 256, 4096};

// Best-of-reps timing, same scheme as syscall_gate_bench.
template <typename Fn>
double NsPerOp(Fn&& fn, int iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

struct Row {
  std::string hook;
  int size = 0;
  std::string config;
  double ns_per_op = 0;
  double speedup_vs_scan = 1.0;
};

Task MakeBenchTask(Uid uid, std::string exe) {
  Task t;
  t.cred = Cred::ForUser(uid, uid);
  t.exe_path = std::move(exe);
  return t;
}

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_policy_engine.json";
  constexpr int kReps = 5;

  SimSystem sys(SimMode::kProtego);
  ProtegoLsm* protego_lsm = sys.lsm();
  LsmStack& stack = sys.kernel().lsm();
  // Tracing off for the measurement: this bench isolates policy-engine cost,
  // and its numbers are compared against the pre-tracepoint baseline.
  // (observability_bench measures the tracing overhead itself.)
  sys.kernel().tracer().set_enabled(false);

  std::vector<Row> rows;
  for (int size : kSizes) {
    // Synthesize size-entry tables through the real parsers, so the bench
    // exercises exactly what a /proc/protego swap installs.
    std::string bind_conf, fstab, sudoers;
    for (int i = 0; i < size; ++i) {
      bind_conf += StrFormat("%d /srv/app%d %d\n", 1 + (i % 1023), i, i % 60000);
      fstab += StrFormat("/dev/disk%d /media/m%d ext4 rw,user 0 0\n", i, i);
      sudoers += StrFormat("File_Delegate /usr/lib/helper%d /var/lib/app%d/* r\n", i, i);
    }
    protego_lsm->SetBindTable(ParseBindConf(bind_conf).take()).take();
    protego_lsm->SetMountPolicy(ParseFstab(fstab).take()).take();
    protego_lsm->SetDelegation(ParseSudoers(sudoers).take()).take();

    // Bind probe: the LAST allocation in the table (worst case for the
    // scan, a bucket hit for the index).
    const int last = size - 1;
    Task bind_task = MakeBenchTask(last % 60000, StrFormat("/srv/app%d", last));
    BindRequest bind_req;
    bind_req.port = static_cast<uint16_t>(1 + (last % 1023));
    bind_req.binary_path = bind_task.exe_path;

    // Mount / inode probes: match nothing (full scan, index miss).
    Task mount_task = MakeBenchTask(1000, "/bin/mount");
    MountRequest mount_req;
    mount_req.source = "/dev/nonexistent";
    mount_req.mountpoint = "/media/nonexistent";
    mount_req.fstype = "ext4";
    mount_req.options = {"ro"};

    Task inode_task = MakeBenchTask(1000, "/bin/sh");
    Inode inode;
    inode.mode = kIfReg | 0644;

    // Miss-heavy probe: 128 distinct paths (none matching any rule) cycled
    // through the 64-slot cache, so cached configs never hit.
    std::vector<std::string> miss_paths;
    for (int i = 0; i < 128; ++i) {
      miss_paths.push_back(StrFormat("/srv/data/f%d", i));
    }
    size_t miss_i = 0;

    // Fewer iterations for larger tables: the scan rows are O(size) per op.
    const int iters = std::max(1000, 200000 / size);
    double scan_ns[4] = {0, 0, 0, 0};
    for (const EngineConfig& cfg : kConfigs) {
      protego_lsm->set_compiled_engine_enabled(cfg.compiled);
      stack.set_decision_cache_enabled(cfg.cache);
      stack.set_cache_bypass_enabled(!cfg.force_cache);

      double ns[4];
      ns[0] = NsPerOp([&] { (void)stack.SocketBind(bind_task, bind_req); }, iters, kReps);
      ns[1] = NsPerOp([&] { (void)stack.SbMount(mount_task, mount_req); }, iters, kReps);
      ns[2] = NsPerOp(
          [&] { (void)stack.InodePermission(inode_task, "/etc/hosts", inode, kMayRead); },
          iters, kReps);
      ns[3] = NsPerOp(
          [&] {
            (void)stack.InodePermission(inode_task, miss_paths[miss_i++ & 127], inode,
                                        kMayRead);
          },
          iters, kReps);

      const char* hooks[4] = {"socket_bind", "sb_mount", "inode_permission",
                              "inode_permission_miss"};
      for (int h = 0; h < 4; ++h) {
        if (!cfg.compiled && !cfg.cache) {
          scan_ns[h] = ns[h];
        }
        Row row;
        row.hook = hooks[h];
        row.size = size;
        row.config = cfg.name;
        row.ns_per_op = ns[h];
        row.speedup_vs_scan = ns[h] > 0 ? scan_ns[h] / ns[h] : 0;
        rows.push_back(row);
        std::printf("%-17s n=%-5d %-15s %9.2f ns/op  %6.2fx\n", hooks[h], size,
                    cfg.name, ns[h], row.speedup_vs_scan);
      }
    }
  }
  // Restore boot defaults.
  protego_lsm->set_compiled_engine_enabled(true);
  stack.set_decision_cache_enabled(true);
  stack.set_cache_bypass_enabled(true);
  sys.kernel().tracer().set_enabled(true);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"policy_engine\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"reps\": %d,\n  \"rows\": [\n", kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"hook\": \"%s\", \"table_entries\": %d, \"config\": \"%s\", "
                 "\"ns_per_op\": %.2f, \"speedup_vs_scan\": %.2f}%s\n",
                 rows[i].hook.c_str(), rows[i].size, rows[i].config.c_str(),
                 rows[i].ns_per_op, rows[i].speedup_vs_scan,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
