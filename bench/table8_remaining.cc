// Table 8: the long tail — remaining setuid binaries grouped by the
// interface requiring privilege, and how many Protego's abstractions
// already address (§5.4).

#include <cstdio>

#include "src/study/remaining.h"

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 8 reproduction: toward zero setuid-to-root binaries ===\n\n");
  std::printf("%-28s %10s %12s   %s\n", "Interface", "Binaries", "Addressed?", "Notes");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const RemainingGroup& g : RemainingBinaries()) {
    std::printf("%-28s %10d %12s   %s\n", g.interface_name.c_str(), g.binary_count,
                g.addressed_by_protego ? "yes" : "future work", g.notes.c_str());
  }
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("Total: %d binaries in 67 packages; %d already use interfaces Protego "
              "addresses (paper: 91 total, 77 addressed).\n",
              RemainingTotal(), RemainingAddressed());
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
