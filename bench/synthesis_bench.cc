// Cost of the closed synthesis loop, emitted as BENCH_synthesis.json:
//
//   collect      run the traced workload and gather observation streams
//   synthesize   collapse a collected corpus into filters + policy tables
//   end_to_end   CollectTraces + ReferenceContext + Synthesize (the
//                SynthesizePolicy path the study and the CLI use)
//   install      apply a synthesized policy to a fresh Protego boot
//
// Synthesis is an offline/deploy-time activity, so the bar here is "cheap
// enough to run in CI on every change", not nanoseconds — times are ms/op.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/study/synth_study.h"

namespace protego {
namespace {

template <typename Fn>
double MsPerOp(Fn&& fn, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    fn();
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / 1e6);
  }
  return best;
}

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  using namespace protego::synth;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_synthesis.json";
  constexpr uint64_t kSeed = 42;
  constexpr int kReps = 3;

  struct Row {
    std::string stage;
    double ms_per_op = 0;
  };
  std::vector<Row> rows;
  auto bench = [&](const char* stage, auto&& fn) {
    double ms = MsPerOp(fn, kReps);
    rows.push_back({stage, ms});
    std::printf("%-12s %8.2f ms/op\n", stage, ms);
  };

  TraceCorpus corpus = CollectTraces(kSeed, ExecMode::kDeterministic);
  SynthContext ctx = ReferenceContext();
  SynthesizedPolicy policy = Synthesize(corpus, ctx);

  bench("collect", [&] { (void)CollectTraces(kSeed, ExecMode::kDeterministic); });
  bench("synthesize", [&] { (void)Synthesize(corpus, ctx); });
  bench("end_to_end", [&] { (void)SynthesizePolicy(kSeed, ExecMode::kDeterministic); });
  bench("install", [&] {
    SimSystem sys(SimMode::kProtego);
    if (!InstallSynthesized(sys, policy).ok()) {
      std::fprintf(stderr, "install failed\n");
      std::exit(1);
    }
  });

  size_t total_rules = 0;
  for (const UtilityFilter& f : policy.filters) {
    for (const auto& [nr, rules] : f.spec.rules) {
      total_rules += rules.size();
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"synthesis\",\n  \"unit\": \"ms/op\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n  \"reps\": %d,\n", (unsigned long long)kSeed, kReps);
  std::fprintf(f, "  \"scenarios\": %zu,\n  \"events\": %zu,\n", corpus.streams.size(),
               corpus.TotalEvents());
  std::fprintf(f, "  \"filters\": %zu,\n  \"predicate_rules\": %zu,\n",
               policy.filters.size(), total_rules);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    {\"stage\": \"%s\", \"ms_per_op\": %.2f}%s\n",
                 rows[i].stage.c_str(), rows[i].ms_per_op,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
