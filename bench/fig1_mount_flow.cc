// Figure 1: comparison of the mount system call on Linux and Protego.
// Executes the two flows on live systems and narrates each step, marking
// trusted components, exactly as the paper's figure does.

#include <cstdio>

#include "src/base/strings.h"
#include "src/sim/system.h"

namespace protego {
namespace {

void LinuxFlow() {
  std::printf("--- Linux (stock): trust lives in the setuid /bin/mount binary ---\n\n");
  SimSystem sys(SimMode::kLinux);
  Task& alice = sys.Login("alice");

  auto st = sys.kernel().Stat(alice, "/bin/mount");
  std::printf("  [untrusted] alice runs /bin/mount (mode %04o -> process gains euid 0)\n",
              st.value().mode & kPermMask);
  std::printf("  [TRUSTED]   /bin/mount reads /etc/fstab and checks the 'user' option "
              "ITSELF\n");
  std::printf("  [TRUSTED]   /bin/mount issues mount(2) with CAP_SYS_ADMIN\n");
  std::printf("  [kernel]    mount(2): capable(CAP_SYS_ADMIN)? yes -> mounted\n");
  auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  std::printf("  result: exit=%d, %s", out.exit_code, out.out.c_str());
  std::printf("  exposure: a parsing bug in /bin/mount executes WITH euid 0\n\n");

  Task& alice2 = sys.Login("alice");
  auto direct = sys.kernel().Mount(alice2, "/dev/cdrom", "/media/usb", "iso9660", {"ro"});
  std::printf("  control: alice calling mount(2) directly -> %s\n\n",
              direct.ok() ? "ALLOWED (?!)" : direct.error().ToString().c_str());
}

void ProtegoFlow() {
  std::printf("--- Protego: trust lives in the kernel policy + trusted daemon ---\n\n");
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");

  std::printf("  [TRUSTED]   monitoring daemon read /etc/fstab and wrote the whitelist to\n");
  std::printf("              /proc/protego/mounts (%llu syncs so far)\n",
              static_cast<unsigned long long>(sys.daemon()->sync_count()));
  Task& root = sys.Login("root");
  auto policy = sys.kernel().ReadWholeFile(root, "/proc/protego/mounts");
  for (const auto& line : Split(policy.value_or(""), '\n')) {
    if (!line.empty()) {
      std::printf("              | %s\n", line.c_str());
    }
  }
  auto st = sys.kernel().Stat(alice, "/bin/mount");
  std::printf("  [untrusted] alice runs /bin/mount (mode %04o -> NO privilege gained)\n",
              st.value().mode & kPermMask);
  std::printf("  [untrusted] /bin/mount issues mount(2) with alice's own credentials\n");
  std::printf("  [kernel]    mount(2) -> security_sb_mount() -> Protego LSM checks the\n");
  std::printf("              whitelist -> ALLOW\n");
  auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  std::printf("  result: exit=%d, %s", out.exit_code, out.out.c_str());
  std::printf("  exposure: a parsing bug in /bin/mount executes with alice's privileges "
              "only\n\n");

  std::printf("  stats: mount hook decisions so far: allowed=%llu denied=%llu\n",
              static_cast<unsigned long long>(sys.lsm()->stats().mount_allowed),
              static_cast<unsigned long long>(sys.lsm()->stats().mount_denied));

  // And ANY binary may now perform the whitelisted mount - the policy is in
  // the kernel, not in a blessed binary.
  Task& bob = sys.Login("bob");
  (void)sys.RunCapture(sys.Login("alice"), "/bin/umount", {"umount", "/media/cdrom"});
  auto direct = sys.kernel().Mount(bob, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
  std::printf("  bonus: bob calling mount(2) directly (no /bin/mount at all) -> %s\n",
              direct.ok() ? "allowed by kernel policy" : direct.error().ToString().c_str());
}

}  // namespace
}  // namespace protego

int main() {
  std::printf("=== Figure 1 reproduction: the mount flow on both systems ===\n\n");
  protego::LinuxFlow();
  protego::ProtegoFlow();
  return 0;
}
