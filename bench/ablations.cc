// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. per-hook cost as the LSM stack deepens (0..3 modules)
//   2. parse-validate-swap policy reload cost vs table size
//   3. monitoring-daemon sync latency vs configuration size
//   4. netfilter raw-rule cost on non-raw traffic (the fast-path claim)

#include <cstdio>

#include "bench/harness.h"
#include "src/base/strings.h"
#include "src/lsm/apparmor.h"
#include "src/lsm/capability_module.h"
#include "src/protego/protego_lsm.h"

namespace protego {
namespace {

void HookDepthAblation() {
  std::printf("--- Ablation 1: hook-mediated syscall cost vs LSM stack depth ---\n");
  std::printf("%-34s %14s %14s\n", "stack", "setuid ns/op", "bind ns/op");
  // Custom kernels with 0..N modules; both ops traverse task_fix_setuid /
  // socket_bind plus capable(), so every added module is on the hot path.
  for (int depth = 0; depth <= 3; ++depth) {
    Kernel kernel;
    if (depth >= 1) {
      kernel.lsm().Register(std::make_unique<CapabilityModule>());
    }
    if (depth >= 2) {
      kernel.lsm().Register(std::make_unique<AppArmorModule>());
    }
    if (depth >= 3) {
      kernel.lsm().Register(std::make_unique<ProtegoLsm>(&kernel));
    }
    Task& root = kernel.CreateTask("bench", Cred::Root(), nullptr);
    Measurement setuid_m = MeasureNs([&]() { (void)kernel.Setuid(root, kRootUid); });
    Measurement bind_m = MeasureNs([&]() {
      auto fd = kernel.SocketCall(root, kAfInet, kSockStream, 0);
      (void)kernel.BindCall(root, fd.value(), 8080);
      (void)kernel.Close(root, fd.value());
    });
    const char* label[] = {"none", "capability", "capability+apparmor",
                           "capability+apparmor+protego"};
    std::printf("%-34s %14.1f %14.1f\n", label[depth], setuid_m.mean_ns, bind_m.mean_ns);
  }
}

void PolicyReloadAblation() {
  std::printf("\n--- Ablation 2: /proc/protego/mounts reload cost vs table size ---\n");
  std::printf("%-12s %14s\n", "entries", "reload ns");
  for (int entries : {1, 10, 100, 1000}) {
    SimSystem sys(SimMode::kProtego);
    Task& root = sys.Login("root");
    std::string table;
    for (int i = 0; i < entries; ++i) {
      table += StrFormat("/dev/loop%d /media/m%d ext4 ro,user\n", i, i);
    }
    Measurement m = MeasureNs(
        [&]() { (void)sys.kernel().WriteWholeFile(root, "/proc/protego/mounts", table); },
        /*repeats=*/3, /*min_batch_ms=*/5.0);
    std::printf("%-12d %14.0f\n", entries, m.mean_ns);
  }
}

void DaemonSyncAblation() {
  std::printf("\n--- Ablation 3: monitoring-daemon fstab sync latency vs file size ---\n");
  std::printf("%-12s %14s %10s\n", "entries", "sync ns", "syncs");
  for (int entries : {1, 10, 100, 1000}) {
    SimSystem sys(SimMode::kProtego);
    Task& root = sys.Login("root");
    std::string fstab = "/dev/sda1 / ext4 defaults\n";
    for (int i = 0; i < entries; ++i) {
      fstab += StrFormat("/dev/loop%d /media/m%d ext4 ro,user\n", i, i);
    }
    uint64_t before = sys.daemon()->sync_count();
    // Each write fires the watch; the daemon re-reads, validates, pushes.
    Measurement m = MeasureNs(
        [&]() { (void)sys.kernel().WriteWholeFile(root, "/etc/fstab", fstab); },
        /*repeats=*/3, /*min_batch_ms=*/5.0);
    std::printf("%-12d %14.0f %10llu\n", entries, m.mean_ns,
                static_cast<unsigned long long>(sys.daemon()->sync_count() - before));
  }
}

void RawRuleFastPathAblation() {
  std::printf("\n--- Ablation 4: netfilter raw-ruleset tax on NORMAL traffic ---\n");
  std::printf("%-26s %14s\n", "configuration", "udp send ns");
  for (bool with_rules : {false, true}) {
    SimSystem sys(SimMode::kProtego);
    if (!with_rules) {
      sys.kernel().net().netfilter().Flush();
    }
    Task& task = sys.Login("alice");
    Kernel& k = sys.kernel();
    int client = k.SocketCall(task, kAfInet, kSockDgram, 0).value();
    (void)k.BindCall(task, client, 9000);
    int server = k.SocketCall(task, kAfInet, kSockDgram, 0).value();
    (void)k.BindCall(task, server, 9001);
    Measurement m = MeasureNs([&]() {
      Packet p;
      p.l4_proto = kProtoUdp;
      p.dst_ip = kLocalhostIp;
      p.dst_port = 9001;
      (void)k.SendCall(task, client, p);
      (void)k.RecvCall(task, server);
    });
    std::printf("%-26s %14.1f\n", with_rules ? "8 raw-socket rules" : "no rules", m.mean_ns);
  }
}

}  // namespace
}  // namespace protego

int main() {
  std::printf("=== Ablation benchmarks ===\n\n");
  protego::HookDepthAblation();
  protego::PolicyReloadAblation();
  protego::DaemonSyncAblation();
  protego::RawRuleFastPathAblation();
  return 0;
}
