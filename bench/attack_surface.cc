// Attack-surface report (the VulSAN-style analysis §3.2 cites): enumerates
// every installed binary on both systems and classifies the privilege an
// unprivileged invoker's input can reach — the concrete before/after
// picture behind Table 1's "eliminate the setuid bit" claim.

#include <cstdio>
#include <vector>

#include "src/sim/system.h"

namespace protego {
namespace {

struct SurfaceEntry {
  std::string path;
  uint32_t mode = 0;
  bool setuid_root = false;
  bool setgid_nonroot = false;
};

void Walk(SimSystem& sys, Task& root, const std::string& dir,
          std::vector<SurfaceEntry>* out) {
  auto names = sys.kernel().ReadDir(root, dir);
  if (!names.ok()) {
    return;
  }
  for (const std::string& name : names.value()) {
    std::string path = (dir == "/" ? "" : dir) + "/" + name;
    auto st = sys.kernel().Stat(root, path);
    if (!st.ok()) {
      continue;
    }
    if (IsDirMode(st.value().mode)) {
      Walk(sys, root, path, out);
      continue;
    }
    if (!IsRegMode(st.value().mode) || (st.value().mode & 0111) == 0) {
      continue;
    }
    SurfaceEntry e;
    e.path = path;
    e.mode = st.value().mode;
    e.setuid_root = (st.value().mode & kSetUidBit) != 0 && st.value().uid == kRootUid;
    e.setgid_nonroot = (st.value().mode & kSetGidBit) != 0 && st.value().gid != kRootGid;
    out->push_back(std::move(e));
  }
}

void Report(SimMode mode) {
  SimSystem sys(mode);
  Task& root = sys.Login("root");
  std::vector<SurfaceEntry> entries;
  for (const char* top : {"/bin", "/sbin", "/usr"}) {
    Walk(sys, root, top, &entries);
  }

  int setuid_root = 0;
  int setgid_nonroot = 0;
  std::string setuid_list;
  for (const SurfaceEntry& e : entries) {
    if (e.setuid_root) {
      ++setuid_root;
      setuid_list += "    " + e.path + "  (" + ModeString(e.mode) + ")\n";
    }
    if (e.setgid_nonroot) {
      ++setgid_nonroot;
    }
  }

  std::printf("--- %s ---\n", mode == SimMode::kLinux ? "stock Linux 3.6 + AppArmor"
                                                      : "Protego");
  std::printf("  executables installed:      %zu\n", entries.size());
  std::printf("  setuid-ROOT binaries:       %d\n", setuid_root);
  std::printf("  setgid-nonroot binaries:    %d (the benign §3.1 technique)\n",
              setgid_nonroot);
  if (setuid_root > 0) {
    std::printf("  every one of these runs attacker-reachable parsers with euid 0:\n%s",
                setuid_list.c_str());
  } else {
    std::printf("  => no attacker input ever reaches code running with euid 0 via the\n");
    std::printf("     setuid bit; the remaining trusted surface is the kernel policy\n");
    std::printf("     code plus two auditable services (Table 2).\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace protego

int main() {
  std::printf("=== Attack-surface report: setuid exposure before/after Protego ===\n\n");
  protego::Report(protego::SimMode::kLinux);
  protego::Report(protego::SimMode::kProtego);
  return 0;
}
