// Table 5 (microbenchmark rows): the lmbench-style suite, including the
// paper's 5 additional tests exercising the modified system calls
// (mount/umount, setuid, setgid, ioctl, bind).
//
// Reporting: absolute times are simulated-kernel nanoseconds, so the raw
// overhead percentage exaggerates (a 10 ns hook on a 20 ns simulated
// setuid is 50%, while the same 10 ns on the real 0.82 us setuid is ~1%).
// The harness therefore also reports a CALIBRATED overhead — the measured
// Protego delta in ns divided by the paper's Linux baseline for that row —
// which is the apples-to-apples number to compare with the paper's % OH.

#include <cstdio>

#include "bench/harness.h"
#include "src/net/ioctl_codes.h"

namespace protego {
namespace {

std::string MakePayload(size_t size) { return std::string(size, 'x'); }

struct RowSpec {
  const char* name;
  double paper_linux_us;  // Table 5's Linux column
  double paper_oh_pct;    // Table 5's % OH column
  OpFactory factory;
};

void RunMicro() {
  std::vector<RowSpec> specs;

  specs.push_back({"syscall", 0.04, 0.00, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() { (void)k->GetPid(*t); });
                   }});

  specs.push_back({"read", 0.09, 0.00, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     int fd = k->Open(task, "/etc/hosts", kORdOnly).value();
                     FdEntry* entry = task.fds.Get(fd);
                     return std::function<void()>([k, t, entry]() {
                       entry->file->offset = 0;
                       (void)k->Read(*t, 3);
                     });
                   }});

  specs.push_back({"write", 0.09, 0.00, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     (void)k->WriteWholeFile(task, "/tmp/bench.dat", "seed");
                     int fd = k->Open(task, "/tmp/bench.dat", kOWrOnly).value();
                     FdEntry* entry = task.fds.Get(fd);
                     return std::function<void()>([k, t, entry]() {
                       entry->file->offset = 0;
                       (void)k->Write(*t, 3, "data");
                     });
                   }});

  specs.push_back({"stat", 0.34, -2.94, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() { (void)k->Stat(*t, "/etc/hosts"); });
                   }});

  specs.push_back({"open/close", 1.17, 0.00, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       int fd = k->Open(*t, "/etc/hosts", kORdOnly).value();
                       (void)k->Close(*t, fd);
                     });
                   }});

  specs.push_back({"mount/umnt", 525.15, 1.13, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       (void)k->Mount(*t, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
                       (void)k->Umount(*t, "/media/cdrom");
                     });
                   }});

  specs.push_back({"setuid", 0.82, 1.22, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() { (void)k->Setuid(*t, kRootUid); });
                   }});

  specs.push_back({"setgid", 0.82, 1.22, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() { (void)k->Setgid(*t, kRootGid); });
                   }});

  specs.push_back({"ioctl", 2.76, 0.72, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     int fd = k->Open(task, "/dev/ppp", kORdWr).value();
                     (void)k->Ioctl(task, fd, kPppIocNewUnit, "");
                     return std::function<void()>(
                         [k, t, fd]() { (void)k->Ioctl(*t, fd, kPppIocSFlags, "0 novj"); });
                   }});

  specs.push_back({"bind", 1.77, 2.25, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       int fd = k->SocketCall(*t, kAfInet, kSockStream, 0).value();
                       (void)k->BindCall(*t, fd, 8080);
                       (void)k->Close(*t, fd);
                     });
                   }});

  specs.push_back({"fork+exit", 159.0, -0.63, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       Task& child = k->CreateTask("child", t->cred, t->terminal, t->pid);
                       k->ReapTask(child.pid);
                     });
                   }});

  specs.push_back({"fork+execve", 554.0, 3.43, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       t->stdout_buf.clear();
                       t->terminal->ClearOutput();
                       (void)k->Spawn(*t, "/usr/bin/id", {"id"}, {});
                     });
                   }});

  specs.push_back({"fork+/bin/sh", 1360.0, 3.90, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       t->stdout_buf.clear();
                       t->terminal->ClearOutput();
                       (void)k->Spawn(*t, "/bin/sh", {"sh", "-c", "x"}, {});
                     });
                   }});

  specs.push_back({"0KB create+del", 9.50, -3.0, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       int fd = k->Open(*t, "/tmp/f0", kOWrOnly | kOCreat).value();
                       (void)k->Close(*t, fd);
                       (void)k->Unlink(*t, "/tmp/f0");
                     });
                   }});

  specs.push_back({"10KB create+del", 16.90, -1.3, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     std::string payload = MakePayload(10 * 1024);
                     return std::function<void()>([k, t, payload]() {
                       (void)k->WriteWholeFile(*t, "/tmp/f10k", payload);
                       (void)k->Unlink(*t, "/tmp/f10k");
                     });
                   }});

  specs.push_back({"AF_UNIX/pipe lat", 9.30, 4.19, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     int server = k->SocketCall(task, kAfInet, kSockDgram, 0).value();
                     (void)k->BindCall(task, server, 5353);
                     int client = k->SocketCall(task, kAfInet, kSockDgram, 0).value();
                     return std::function<void()>([k, t, server, client]() {
                       Packet p;
                       p.l4_proto = kProtoUdp;
                       p.dst_ip = kLocalhostIp;
                       p.dst_port = 5353;
                       p.payload = "ping";
                       (void)k->SendCall(*t, client, p);
                       (void)k->RecvCall(*t, server);
                     });
                   }});

  specs.push_back({"TCP connect", 18.0, 3.05, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     return std::function<void()>([k, t]() {
                       int fd = k->SocketCall(*t, kAfInet, kSockStream, 0).value();
                       (void)k->ConnectCall(*t, fd, kSimWebServerIp, 80);
                       (void)k->Close(*t, fd);
                     });
                   }});

  specs.push_back({"Local UDP lat", 16.70, 7.19, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     int server = k->SocketCall(task, kAfInet, kSockDgram, 0).value();
                     (void)k->BindCall(task, server, 6000);
                     int client = k->SocketCall(task, kAfInet, kSockDgram, 0).value();
                     (void)k->BindCall(task, client, 6001);
                     return std::function<void()>([k, t, server, client]() {
                       Packet p;
                       p.l4_proto = kProtoUdp;
                       p.dst_ip = kLocalhostIp;
                       p.dst_port = 6000;
                       (void)k->SendCall(*t, client, p);
                       (void)k->RecvCall(*t, server);
                       Packet reply;
                       reply.l4_proto = kProtoUdp;
                       reply.dst_ip = kLocalhostIp;
                       reply.dst_port = 6001;
                       (void)k->SendCall(*t, server, reply);
                       (void)k->RecvCall(*t, client);
                     });
                   }});

  specs.push_back({"Rem. UDP lat", 543.60, 6.38, [](SimSystem& sys, Task& task) {
                     Kernel* k = &sys.kernel();
                     Task* t = &task;
                     int client = k->SocketCall(task, kAfInet, kSockDgram, 0).value();
                     (void)k->BindCall(task, client, 6100);
                     return std::function<void()>([k, t, client]() {
                       Packet p;
                       p.l4_proto = kProtoUdp;
                       p.dst_ip = kSimGatewayIp;
                       p.dst_port = 7;  // the gateway's echo service
                       (void)k->SendCall(*t, client, p);
                       (void)k->RecvCall(*t, client);
                     });
                   }});

  std::printf("=== Table 5 reproduction: lmbench-style microbenchmarks ===\n");
  std::printf("sim columns: this simulator (us/op). delta: Protego-sim minus Linux-sim.\n");
  std::printf("calib %%OH: measured delta applied to the paper's real Linux baseline\n");
  std::printf("(the apples-to-apples column; compare with 'paper %%OH').\n\n");
  std::printf("%-18s %10s %10s %9s %10s %10s\n", "Test", "linux(sim)", "prot(sim)",
              "delta(ns)", "calib %OH", "paper %OH");
  std::printf("%s\n", std::string(72, '-').c_str());

  double max_calib = 0;
  for (const RowSpec& spec : specs) {
    ComparisonRow row = CompareModes(spec.name, spec.factory);
    // Compare fastest repeats: allocator/layout noise between two separately
    // booted systems otherwise dominates ns-scale rows.
    double delta_ns = row.protego_m.best_ns - row.linux_m.best_ns;
    double calib = 100.0 * delta_ns / (spec.paper_linux_us * 1000.0);
    max_calib = std::max(max_calib, calib);
    std::printf("%-18s %10.3f %10.3f %9.1f %9.2f%% %9.2f%%\n", spec.name,
                row.linux_m.mean_ns / 1000.0, row.protego_m.mean_ns / 1000.0, delta_ns, calib,
                spec.paper_oh_pct);
  }

  // Bandwidth row (MB/s, higher is better).
  {
    constexpr size_t kChunk = 64 * 1024;
    OpFactory factory = [](SimSystem& sys, Task& task) {
      Kernel* k = &sys.kernel();
      Task* t = &task;
      std::string payload = MakePayload(kChunk);
      return std::function<void()>([k, t, payload]() {
        (void)k->WriteWholeFile(*t, "/tmp/bw.dat", payload);
        (void)k->ReadWholeFile(*t, "/tmp/bw.dat");
      });
    };
    ComparisonRow row = CompareModes("BW", factory);
    double linux_mbps = (2.0 * kChunk) / (row.linux_m.mean_ns / 1e9) / 1e6;
    double protego_mbps = (2.0 * kChunk) / (row.protego_m.mean_ns / 1e9) / 1e6;
    std::printf("%-18s %10.1f %10.1f %9s %9.2f%% %9.2f%%  (MB/s, higher is better)\n",
                "BW (MB/s)", linux_mbps, protego_mbps, "-",
                100.0 * (linux_mbps - protego_mbps) / linux_mbps, 2.74);
  }

  std::printf("\nRows without a simulator analog (sig install/overhead, protection fault)\n");
  std::printf("are omitted; the paper reports 0.00%% overhead for them.\n");
  std::printf("Max calibrated overhead across rows: %.2f%% (paper: <= 7.4%%)\n", max_calib);
}

}  // namespace
}  // namespace protego

int main() {
  protego::RunMicro();
  return 0;
}
