// Table 5 (macro rows): the Postal mail benchmark, the kernel-compile
// workload, and the ApacheBench concurrency sweep — re-hosted on the macro
// workload engine (src/workload), so the Table 5 reproduction and the
// traffic-scale harness (bench/macro_bench) are the same op streams and
// cannot drift apart.
//
// The engine keeps all maintenance (spool provisioning, sessions, fixture
// writes) OUTSIDE the timed window — the old standalone rows measured
// spool truncation, Login("root"), and ReapTask inside the Postal loop —
// and every row is seeded and deterministic: both stacks replay the
// identical op stream, so the overhead column compares like with like.
//
// Honors PROTEGO_EXEC_MODE (deterministic | parallel) like every harness.

#include <cstdio>

#include "src/kernel/exec_mode.h"
#include "src/workload/workload.h"

namespace protego {
namespace {

using workload::CompareStacks;
using workload::Mix;
using workload::OverheadRow;
using workload::RelativeOverheadPct;
using workload::WorkloadSpec;

constexpr uint64_t kSeed = 42;

void Run() {
  const ExecMode mode = ExecModeFromEnv();
  std::printf("=== Table 5 reproduction: macro benchmarks (%s mode) ===\n\n",
              ExecModeName(mode));

  {
    // Postal drives the MTA's delivery loop; one engine unit = one message
    // (spool write + rename + the credential transitions).
    std::printf("--- Postal benchmark for Exim server (messages/min, higher is better) ---\n");
    WorkloadSpec spec;
    spec.mix = Mix::kMail;
    spec.tasks = 4;
    spec.total_ops = 64000;
    spec.seed = kSeed;
    spec.exec_mode = mode;
    OverheadRow row = CompareStacks(spec);
    const double linux_mpm = row.stock.units_per_sec * 60.0;
    const double protego_mpm = row.protego.units_per_sec * 60.0;
    std::printf("%-18s %12.0f %12.0f %7.2f%%  (paper: 0.04%%)\n", "Messages/min",
                linux_mpm, protego_mpm, RelativeOverheadPct(linux_mpm, protego_mpm));
  }

  {
    // One engine unit = one translation unit of the compile mix.
    std::printf("\n--- Kernel compile (seconds for the syscall-mix replay) ---\n");
    WorkloadSpec spec;
    spec.mix = Mix::kCompile;
    spec.tasks = 4;
    spec.total_ops = 144000;
    spec.seed = kSeed;
    spec.exec_mode = mode;
    OverheadRow row = CompareStacks(spec);
    std::printf("%-18s %12.3f %12.3f %7.2f%%  (paper: 1.44%%, claim: <2%%)\n", "time(s)",
                row.stock.wall_seconds, row.protego.wall_seconds,
                100.0 * (row.protego.wall_seconds - row.stock.wall_seconds) /
                    row.stock.wall_seconds);
  }

  {
    // One engine unit = one request/response exchange of a 1 KB page, so
    // units/sec IS the transfer rate in KB/s; the task count is the
    // concurrency knob.
    std::printf("\n--- ApacheBench (1KB page; paper overheads 2.6-4.0%%) ---\n");
    std::printf("%-18s %12s %12s %8s %12s %12s %8s\n", "concurrency", "linux ms/req",
                "prot ms/req", "%OH", "linux KB/s", "prot KB/s", "%OH");
    for (int concurrency : {25, 50, 100, 200}) {
      WorkloadSpec spec;
      spec.mix = Mix::kWebServe;
      spec.tasks = concurrency;
      spec.total_ops = 40000;
      spec.seed = kSeed;
      spec.exec_mode = mode;
      OverheadRow row = CompareStacks(spec);
      const double linux_ms =
          row.stock.units > 0
              ? row.stock.wall_seconds * 1000.0 / static_cast<double>(row.stock.units)
              : 0;
      const double protego_ms =
          row.protego.units > 0
              ? row.protego.wall_seconds * 1000.0 / static_cast<double>(row.protego.units)
              : 0;
      std::printf("%-18d %12.4f %12.4f %7.2f%% %12.0f %12.0f %7.2f%%\n", concurrency,
                  linux_ms, protego_ms,
                  linux_ms > 0 ? 100.0 * (protego_ms - linux_ms) / linux_ms : 0,
                  row.stock.units_per_sec, row.protego.units_per_sec,
                  RelativeOverheadPct(row.stock.units_per_sec, row.protego.units_per_sec));
    }
  }
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
