// Table 5 (macro rows): the Postal mail benchmark, the kernel-compile
// workload, and the ApacheBench concurrency sweep — each replayed as a
// syscall-mix workload over the simulated kernel, on both system
// configurations.

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "src/userland/daemon_utils.h"

namespace protego {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- Postal: exim message throughput --------------------------------------------

double RunPostal(SimMode mode, int batches, int per_batch) {
  SimSystem sys(mode);
  Task& session = sys.Login(mode == SimMode::kLinux ? "root" : "exim");
  std::vector<std::string> argv = {"eximd"};
  for (int i = 0; i < per_batch; ++i) {
    argv.push_back("--deliver=alice:benchmark message body");
  }
  auto start = Clock::now();
  int delivered = 0;
  for (int b = 0; b < batches; ++b) {
    session.stdout_buf.clear();
    auto code = sys.kernel().Spawn(session, "/usr/sbin/eximd", argv, {});
    if (code.ok() && code.value() == 0) {
      delivered += per_batch;
    }
    // Keep the spool bounded so later batches don't measure string growth.
    Task& root = sys.Login("root");
    (void)sys.kernel().WriteWholeFile(root, "/var/mail/alice", "");
    sys.kernel().ReapTask(root.pid);
  }
  double seconds = SecondsSince(start);
  return delivered / seconds * 60.0;  // messages per minute
}

// --- Kernel compile: a syscall-mix replay -----------------------------------------

// One "translation unit": stat the sources, read headers, write the object
// file, and spawn the compiler driver — the syscall profile of `make`.
void CompileUnit(SimSystem& sys, Task& session, int unit) {
  Kernel& k = sys.kernel();
  for (int i = 0; i < 8; ++i) {
    (void)k.Stat(session, "/usr/include/hdr" + std::to_string(i % 4) + ".h");
  }
  for (int i = 0; i < 4; ++i) {
    (void)k.ReadWholeFile(session, "/usr/include/hdr" + std::to_string(i % 4) + ".h");
  }
  session.stdout_buf.clear();
  (void)k.Spawn(session, "/bin/sh", {"sh", "-c", "cc"}, {});
  (void)k.WriteWholeFile(session, "/tmp/obj" + std::to_string(unit % 16) + ".o",
                         "object-code");
}

double RunCompile(SimMode mode, int units) {
  SimSystem sys(mode);
  Task& root = sys.Login("root");
  for (int i = 0; i < 4; ++i) {
    (void)sys.kernel().WriteWholeFile(root, "/usr/include/hdr" + std::to_string(i) + ".h",
                                      std::string(512, 'h'));
  }
  Task& session = sys.Login("alice");
  auto start = Clock::now();
  for (int u = 0; u < units; ++u) {
    CompileUnit(sys, session, u);
  }
  return SecondsSince(start);
}

// --- ApacheBench: request latency and transfer rate vs concurrency -----------------

struct AbResult {
  double ms_per_request = 0;
  double transfer_kbps = 0;
};

AbResult RunApacheBench(SimMode mode, int concurrency, int total_requests) {
  SimSystem sys(mode);
  Kernel& k = sys.kernel();
  // The web server binds its allocated port (as root on stock Linux,
  // directly as www-data on Protego) and stays resident.
  Task& server = sys.Login(mode == SimMode::kLinux ? "root" : "www-data");
  server.exe_path = "/usr/sbin/httpd";
  // Modeled as a datagram exchange so the request/response path flows
  // through the full netfilter + delivery machinery in both directions.
  int listen_fd = k.SocketCall(server, kAfInet, kSockDgram, 0).value();
  (void)k.BindCall(server, listen_fd, 80);

  // `concurrency` persistent client connections, requests round-robined.
  Task& client = sys.Login("alice");
  std::vector<int> conns;
  for (int c = 0; c < concurrency; ++c) {
    int fd = k.SocketCall(client, kAfInet, kSockDgram, 0).value();
    (void)k.BindCall(client, fd, static_cast<uint16_t>(10000 + c));
    conns.push_back(fd);
  }
  const std::string response(1024, 'R');  // 1 KB page

  size_t bytes = 0;
  auto one_request = [&](int r) {
    int fd = conns[static_cast<size_t>(r) % conns.size()];
    Packet request;
    request.l4_proto = kProtoUdp;
    request.dst_ip = kLocalhostIp;
    request.dst_port = 80;
    request.payload = "GET / HTTP/1.0";
    (void)k.SendCall(client, fd, request);
    // The server drains its queue and answers.
    auto got = k.RecvCall(server, listen_fd);
    if (got.ok() && got.value().has_value()) {
      Packet reply;
      reply.l4_proto = kProtoUdp;
      reply.dst_ip = kLocalhostIp;
      reply.dst_port = got.value()->src_port;
      reply.payload = response;
      (void)k.SendCall(server, listen_fd, reply);
      auto answer = k.RecvCall(client, fd);
      if (answer.ok() && answer.value().has_value()) {
        bytes += answer.value()->payload.size();
      }
    }
  };
  for (int r = 0; r < total_requests / 4; ++r) {
    one_request(r);  // warm-up: fills allocator pools and branch caches
  }
  bytes = 0;
  auto start = Clock::now();
  for (int r = 0; r < total_requests; ++r) {
    one_request(r);
  }
  double seconds = SecondsSince(start);
  AbResult result;
  result.ms_per_request = seconds * 1000.0 / total_requests;
  result.transfer_kbps = (bytes / 1024.0) / seconds;
  return result;
}

void Run() {
  std::printf("=== Table 5 reproduction: macro benchmarks ===\n\n");

  {
    std::printf("--- Postal benchmark for Exim server (messages/min, higher is better) ---\n");
    double linux_mpm = RunPostal(SimMode::kLinux, 40, 25);
    double protego_mpm = RunPostal(SimMode::kProtego, 40, 25);
    std::printf("%-18s %12.0f %12.0f %7.2f%%  (paper: 0.04%%)\n", "Messages/min", linux_mpm,
                protego_mpm, 100.0 * (linux_mpm - protego_mpm) / linux_mpm);
  }

  {
    std::printf("\n--- Kernel compile (seconds for the syscall-mix replay) ---\n");
    double linux_s = RunCompile(SimMode::kLinux, 4000);
    double protego_s = RunCompile(SimMode::kProtego, 4000);
    std::printf("%-18s %12.3f %12.3f %7.2f%%  (paper: 1.44%%, claim: <2%%)\n", "time(s)",
                linux_s, protego_s, 100.0 * (protego_s - linux_s) / linux_s);
  }

  {
    std::printf("\n--- ApacheBench (1KB page; paper overheads 2.6-4.0%%) ---\n");
    std::printf("%-18s %12s %12s %8s %12s %12s %8s\n", "concurrency", "linux ms/req",
                "prot ms/req", "%OH", "linux KB/s", "prot KB/s", "%OH");
    for (int concurrency : {25, 50, 100, 200}) {
      // Best-of-3 per configuration to suppress allocator/layout noise.
      AbResult linux_r, protego_r;
      linux_r.ms_per_request = 1e9;
      protego_r.ms_per_request = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        AbResult l = RunApacheBench(SimMode::kLinux, concurrency, 20000);
        if (l.ms_per_request < linux_r.ms_per_request) {
          linux_r = l;
        }
        AbResult p = RunApacheBench(SimMode::kProtego, concurrency, 20000);
        if (p.ms_per_request < protego_r.ms_per_request) {
          protego_r = p;
        }
      }
      std::printf("%-18d %12.4f %12.4f %7.2f%% %12.0f %12.0f %7.2f%%\n", concurrency,
                  linux_r.ms_per_request, protego_r.ms_per_request,
                  100.0 * (protego_r.ms_per_request - linux_r.ms_per_request) /
                      linux_r.ms_per_request,
                  linux_r.transfer_kbps, protego_r.transfer_kbps,
                  100.0 * (linux_r.transfer_kbps - protego_r.transfer_kbps) /
                      linux_r.transfer_kbps);
    }
  }
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
