// The paper-style macro overhead table at traffic scale, emitted as
// BENCH_macro.json: every workload mix (compile, web-serve, mail,
// setuid-burst) runs on both module stacks (stock Linux vs Protego) in both
// execution modes (deterministic scheduler, free-running threads), and the
// JSON records per-mix throughput, relative overhead, and the per-syscall
// histogram that feeds the surface-reduction study.
//
// This bench is also the standing regression GATE for the workload engine:
// it exits nonzero if any run violates the engine's determinism contract —
// exact op bookkeeping (ops_issued == units * OpsPerUnit), gate coverage
// (the gate saw at least every issued op), identical op streams on both
// stacks, and bit-identical metrics for a repeated seed. CI runs it as a
// gating step.
//
// Usage: macro_bench [out.json] [ops_per_run]
//   ops_per_run defaults to 120000 per (mix, exec-mode, stack) run — about
//   2M issued syscalls per invocation. Push it to millions per run to
//   stress gate/trace/cache contention.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/study/surface.h"
#include "src/workload/workload.h"

namespace protego {
namespace {

using workload::CompareStacks;
using workload::Mix;
using workload::MixName;
using workload::MixReport;
using workload::OpsPerUnit;
using workload::OverheadRow;
using workload::RunWorkload;
using workload::WorkloadSpec;

constexpr int kTasks = 8;
constexpr uint64_t kDeterminismProbeOps = 4000;

bool CheckReport(const MixReport& r, std::string& err) {
  const uint64_t expected = r.units * OpsPerUnit(r.mix);
  if (r.ops_issued != expected) {
    err = std::string("ops_issued != units * ops_per_unit for ") + MixName(r.mix);
    return false;
  }
  if (r.profile.total() < r.ops_issued) {
    err = std::string("gate saw fewer calls than the workload issued for ") +
          MixName(r.mix);
    return false;
  }
  return true;
}

bool CheckRow(const OverheadRow& row, std::string& err) {
  if (!CheckReport(row.stock, err) || !CheckReport(row.protego, err)) {
    return false;
  }
  if (row.stock.ops_issued != row.protego.ops_issued ||
      row.stock.units != row.protego.units) {
    err = std::string("stock and Protego op streams diverged for ") +
          MixName(row.stock.mix);
    return false;
  }
  return true;
}

// Same spec, same seed, run twice: everything but wall-clock must match.
bool CheckDeterminism(std::string& err) {
  WorkloadSpec spec;
  spec.mix = Mix::kCompile;
  spec.tasks = 2;
  spec.total_ops = kDeterminismProbeOps;
  spec.seed = 7;
  MixReport a = RunWorkload(spec, SimMode::kProtego);
  MixReport b = RunWorkload(spec, SimMode::kProtego);
  if (a.units != b.units || a.ops_issued != b.ops_issued ||
      a.ops_failed != b.ops_failed || !(a.profile == b.profile)) {
    err = "same-seed replay produced different metrics";
    return false;
  }
  return true;
}

void PrintRow(const OverheadRow& row) {
  std::printf("%-13s %-13s %10llu u %12.0f ops/s %12.0f ops/s %+7.2f%%\n",
              MixName(row.stock.mix), ExecModeName(row.stock.exec_mode),
              (unsigned long long)row.stock.units, row.stock.ops_per_sec,
              row.protego.ops_per_sec, row.overhead_pct);
}

void EmitReportJson(FILE* f, const char* key, const MixReport& r) {
  std::fprintf(f,
               "      \"%s\": {\"wall_seconds\": %.6f, \"ops_per_sec\": %.0f, "
               "\"units_per_sec\": %.0f, \"ops_failed\": %llu}",
               key, r.wall_seconds, r.ops_per_sec, r.units_per_sec,
               (unsigned long long)r.ops_failed);
}

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  using workload::Mix;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_macro.json";
  const uint64_t ops_per_run =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 120000ULL;

  std::string err;
  if (!CheckDeterminism(err)) {
    std::fprintf(stderr, "macro_bench: determinism gate FAILED: %s\n", err.c_str());
    return 1;
  }

  const Mix kMixes[] = {Mix::kCompile, Mix::kWebServe, Mix::kMail,
                        Mix::kSetuidBurst};
  const ExecMode kModes[] = {ExecMode::kDeterministic, ExecMode::kParallel};

  std::printf("%-13s %-13s %12s %14s %14s %8s\n", "mix", "exec-mode", "units",
              "stock", "protego", "overhead");
  std::vector<OverheadRow> rows;
  uint64_t total_issued = 0;
  uint64_t total_gate_calls = 0;
  for (Mix mix : kMixes) {
    for (ExecMode mode : kModes) {
      WorkloadSpec spec;
      spec.mix = mix;
      spec.tasks = kTasks;
      spec.total_ops = ops_per_run;
      spec.seed = 1;
      spec.exec_mode = mode;
      OverheadRow row = CompareStacks(spec);
      if (!CheckRow(row, err)) {
        std::fprintf(stderr, "macro_bench: invariant FAILED: %s (%s)\n", err.c_str(),
                     ExecModeName(mode));
        return 1;
      }
      total_issued += row.stock.ops_issued + row.protego.ops_issued;
      total_gate_calls += row.stock.profile.total() + row.protego.profile.total();
      PrintRow(row);
      rows.push_back(std::move(row));
    }
  }

  // The reached-surface view (ROADMAP item 4 input): per mix, which slice
  // of the syscall table the Protego run actually exercised.
  std::vector<SurfaceProfile> surfaces;
  for (const OverheadRow& row : rows) {
    if (row.stock.exec_mode != ExecMode::kDeterministic) {
      continue;
    }
    surfaces.push_back(
        SurfaceFromProfile(MixName(row.stock.mix), row.protego.profile));
  }
  std::printf("\n%s", FormatSurfaceTable(surfaces).c_str());

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"macro\",\n");
  std::fprintf(f, "  \"tasks\": %d,\n  \"seed\": 1,\n", kTasks);
  std::fprintf(f, "  \"ops_per_run\": %llu,\n", (unsigned long long)ops_per_run);
  std::fprintf(f, "  \"total_ops_issued\": %llu,\n", (unsigned long long)total_issued);
  std::fprintf(f, "  \"total_gate_calls\": %llu,\n", (unsigned long long)total_gate_calls);
  std::fprintf(f,
               "  \"note\": \"overhead_pct = 100*(stock-protego)/stock over "
               "issued ops/sec; identical op streams on both stacks by "
               "construction. mail ops_failed under protego are the two "
               "per-delivery seteuid EPERMs — the setuid transition the "
               "paper obviates.\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverheadRow& row = rows[i];
    const MixReport& s = row.stock;
    std::fprintf(f, "    {\"mix\": \"%s\", \"exec_mode\": \"%s\", ", MixName(s.mix),
                 ExecModeName(s.exec_mode));
    std::fprintf(f, "\"units\": %llu, \"ops_issued\": %llu,\n",
                 (unsigned long long)s.units, (unsigned long long)s.ops_issued);
    EmitReportJson(f, "stock", row.stock);
    std::fprintf(f, ",\n");
    EmitReportJson(f, "protego", row.protego);
    std::fprintf(f, ",\n      \"overhead_pct\": %.2f,\n", row.overhead_pct);
    std::fprintf(f, "      \"syscall_profile_protego\": %s}%s\n",
                 row.protego.profile.FormatJson().c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"surface\": [\n");
  for (size_t i = 0; i < surfaces.size(); ++i) {
    const SurfaceProfile& p = surfaces[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"reached_syscalls\": %zu, "
                 "\"surface_fraction\": %.3f}%s\n",
                 p.workload.c_str(), p.reached.size(), p.surface_fraction,
                 i + 1 < surfaces.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%llu issued ops)\n", out_path,
              (unsigned long long)total_issued);
  return 0;
}
