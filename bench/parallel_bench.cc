// ExecMode::kParallel throughput, emitted as BENCH_parallel.json.
//
// Three experiments:
//
//   1. Thread scaling — ONE kernel, N tasks on N real OS threads
//      (ThreadScheduler), fixed TOTAL work split across the tasks. Each
//      task cycles a six-syscall mix (getpid, open-create, write, close,
//      open-read+read, stat) against a private /tmp file, so the measured
//      contention is the sharded kernel state itself (task shards, VFS
//      tree/stripe locks, RCU policy reads), not a shared data file.
//      Reported: aggregate ops/sec and speedup vs the 1-thread row.
//      NOTE: wall-clock scaling is bounded by the host's core count; the
//      "cpus" field records it. On a 1-CPU container every row collapses
//      to lock-handoff throughput; the >= 4x-at-8-threads target needs a
//      host with >= 8 cores (the CI gating job's runner class).
//
//   2. Driver comparison — the same N-task workload driven by the
//      deterministic token-passing scheduler (DetScheduler, one hand-off
//      per syscall: ~microseconds) vs real threads (lock path:
//      tens-to-hundreds of ns). This isolates what parallel mode buys per
//      syscall even before multicore scaling: the serialized hand-off is
//      removed from every call.
//
//   3. Fleet — 10,000 independent kernel instances multiplexed over a
//      worker pool (src/conc/fleet.h), reporting aggregate boot+syscall
//      ops/sec: the multi-tenant axis of parallelism.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/base/clock.h"
#include "src/conc/fleet.h"
#include "src/conc/scheduler.h"
#include "src/conc/thread_sched.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"

namespace protego {
namespace {

// Total six-syscall rounds per configuration, split across threads so every
// row does identical work. 24k rounds = 144k syscalls per run.
constexpr int kTotalRounds = 24000;
constexpr int kReps = 3;

struct ScaleRow {
  int threads = 0;
  double parallel_ops_per_sec = 0;  // ThreadScheduler driver
  double det_ops_per_sec = 0;       // DetScheduler round-robin driver
  double parallel_ns_per_op = 0;
  double det_ns_per_op = 0;
};

void MixRounds(Kernel& kernel, Task& task, const std::string& path, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    (void)kernel.GetPid(task);
    auto fd = kernel.Open(task, path, kOWrOnly | kOCreat, 0644);
    if (fd.ok()) {
      (void)kernel.Write(task, fd.value(), "x");
      (void)kernel.Close(task, fd.value());
    }
    auto rd = kernel.Open(task, path, kORdOnly);
    if (rd.ok()) {
      (void)kernel.Read(task, rd.value());
      (void)kernel.Close(task, rd.value());
    }
    (void)kernel.Stat(task, path);
  }
}

std::unique_ptr<Kernel> BootKernel() {
  auto kernel = std::make_unique<Kernel>();
  kernel->tracer().set_enabled(false);
  kernel->lsm().Register(std::make_unique<CapabilityModule>());
  (void)kernel->vfs().EnsureDirs("/tmp");
  kernel->vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
  return kernel;
}

// Aggregate ops/sec for `threads` tasks sharing one kernel, best of kReps.
template <typename Scheduler>
double MeasureOpsPerSec(int threads) {
  const int rounds_per_task = kTotalRounds / threads;
  const double total_ops = 6.0 * rounds_per_task * threads;
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::unique_ptr<Kernel> kernel = BootKernel();
    Scheduler sched;
    kernel->set_scheduler(&sched);
    std::vector<Task*> tasks;
    for (int t = 0; t < threads; ++t) {
      tasks.push_back(&kernel->CreateTask("bench" + std::to_string(t),
                                          Cred::ForUser(1000 + t, 1000 + t), nullptr));
    }
    uint64_t t0 = MonotonicNanos();
    for (int t = 0; t < threads; ++t) {
      Kernel* k = kernel.get();
      Task* task = tasks[static_cast<size_t>(t)];
      std::string path = "/tmp/bench" + std::to_string(t);
      sched.StartTask(task->pid, [k, task, path, rounds_per_task] {
        MixRounds(*k, *task, path, rounds_per_task);
      });
    }
    if constexpr (std::is_same_v<Scheduler, conc::DetScheduler>) {
      sched.Run();
    } else {
      sched.Join();
    }
    uint64_t t1 = MonotonicNanos();
    kernel->set_scheduler(nullptr);
    best = std::max(best, total_ops / ((t1 - t0) * 1e-9));
  }
  return best;
}

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const unsigned cpus = std::thread::hardware_concurrency();

  std::vector<ScaleRow> rows;
  for (int threads : {1, 2, 4, 8, 16}) {
    ScaleRow row;
    row.threads = threads;
    row.parallel_ops_per_sec = MeasureOpsPerSec<conc::ThreadScheduler>(threads);
    row.det_ops_per_sec = MeasureOpsPerSec<conc::DetScheduler>(threads);
    row.parallel_ns_per_op = 1e9 / row.parallel_ops_per_sec;
    row.det_ns_per_op = 1e9 / row.det_ops_per_sec;
    rows.push_back(row);
    std::printf("threads=%-3d parallel %10.0f ops/s (%7.1f ns/op)   det %10.0f ops/s "
                "(%7.1f ns/op)   parallel/det %.2fx\n",
                row.threads, row.parallel_ops_per_sec, row.parallel_ns_per_op,
                row.det_ops_per_sec, row.det_ns_per_op,
                row.parallel_ops_per_sec / row.det_ops_per_sec);
  }
  const double base = rows[0].parallel_ops_per_sec;

  conc::FleetOptions fleet_opts;
  fleet_opts.instances = 10000;
  fleet_opts.workers = cpus > 1 ? static_cast<int>(cpus) : 4;
  fleet_opts.ops_per_instance = 48;
  conc::FleetReport fleet = conc::RunFleet(fleet_opts);
  std::printf("fleet: %llu instances, %llu/%llu ops completed/issued in %.2fs = %.0f ops/s\n",
              (unsigned long long)fleet.instances_run,
              (unsigned long long)fleet.total_ops,
              (unsigned long long)fleet.total_issued, fleet.wall_seconds,
              fleet.ops_per_sec);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel\",\n  \"cpus\": %u,\n", cpus);
  std::fprintf(f,
               "  \"note\": \"fixed total work (%d six-syscall rounds) split across N "
               "real threads on ONE kernel; speedup_vs_1thread is bounded by cpus — "
               "the >=4x@8-thread target requires a >=8-core host. det rows drive the "
               "identical workload through the serialized deterministic scheduler "
               "(one token hand-off per syscall); parallel_over_det is the per-syscall "
               "win of removing that hand-off, independent of core count.\",\n",
               kTotalRounds);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"parallel_ops_per_sec\": %.0f, "
                 "\"parallel_ns_per_op\": %.1f, \"speedup_vs_1thread\": %.2f, "
                 "\"det_ops_per_sec\": %.0f, \"det_ns_per_op\": %.1f, "
                 "\"parallel_over_det\": %.2f}%s\n",
                 r.threads, r.parallel_ops_per_sec, r.parallel_ns_per_op,
                 r.parallel_ops_per_sec / base, r.det_ops_per_sec, r.det_ns_per_op,
                 r.parallel_ops_per_sec / r.det_ops_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"fleet\": {\"instances\": %llu, \"workers\": %d, "
               "\"total_ops\": %llu, \"total_issued\": %llu, "
               "\"wall_seconds\": %.3f, \"ops_per_sec\": %.0f}\n",
               (unsigned long long)fleet.instances_run, fleet_opts.workers,
               (unsigned long long)fleet.total_ops,
               (unsigned long long)fleet.total_issued, fleet.wall_seconds,
               fleet.ops_per_sec);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
