// Table 2: lines of code written or changed in Protego. Prints the paper's
// ledger next to this reproduction's own line counts, measured from the
// source tree (non-blank, non-comment lines).

#include <cstdio>

#include "src/study/loc_accounting.h"

#ifndef PROTEGO_SOURCE_DIR
#define PROTEGO_SOURCE_DIR "."
#endif

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 2 reproduction: Protego trusted-code ledger ===\n");
  std::printf("(repro lines counted from %s)\n\n", PROTEGO_SOURCE_DIR);
  std::printf("%-18s %-26s %8s %8s\n", "Section", "Component", "paper", "repro");
  std::printf("%s\n", std::string(64, '-').c_str());
  int paper_total = 0;
  int repro_total = 0;
  std::string last_section;
  for (const LocRow& row : LocLedger()) {
    if (row.section != last_section) {
      std::printf("-- %s --\n", row.section.c_str());
      last_section = row.section;
    }
    int ours = CountRow(PROTEGO_SOURCE_DIR, row);
    std::printf("%-18s %-26s %8d %8s\n", "", row.component.c_str(), row.paper_lines,
                row.files.empty() ? "(delta)" : std::to_string(ours).c_str());
    paper_total += row.paper_lines;
    repro_total += ours;
  }
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf("%-18s %-26s %8d %8d\n", "", "Grand Total Changed", paper_total, repro_total);

  TcbSummary summary = PaperSummary();
  std::printf("\nTable 1 context: the paper deprivileges %d lines net, having removed\n",
              summary.paper_deprivileged);
  std::printf("privilege from %d previously-trusted lines at the cost of the ledger above.\n",
              summary.paper_previously_trusted);
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
