// Cost of the fault-injection framework on the syscall hot path, emitted as
// BENCH_faults.json. The claim under test: a disabled registry is one
// relaxed load and a branch — attaching the framework to every syscall,
// fd allocation, and LSM hook costs ≈ 0 until a site is armed.
//
// Configurations measured (getpid = null syscall; open+close = fd + VFS
// + LSM path, crossing three fault sites per iteration):
//   disabled        no site armed: the any_enabled() fast path
//   armed-filtered  a site armed with a never-matching pid filter — the
//                   thread-local ctx mask admits it to a two-compare filter
//                   check that declines without touching shared site state
//   armed-1/1024    probabilistic injection on fd_alloc; the workload
//                   swallows the occasional EMFILE (real injection cost
//                   amortized into the mean)
//
// The disabled row is the regression gate: CI compares it against the
// armed rows and (more importantly) against the syscall_gate bench history.
// The JSON also carries the pre-armed-mask rows (recorded before the
// per-site mask landed) so the before/after delta survives regeneration.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/sim/system.h"

namespace protego {
namespace {

// Best-of-reps timing, same scheme as syscall_gate_bench.
template <typename Fn>
double NsPerOp(Fn&& fn, int iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

struct Row {
  std::string workload;
  std::string config;
  double ns_per_op = 0;
  double overhead_vs_disabled_pct = 0;
};

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  constexpr int kIters = 20000;
  constexpr int kReps = 5;

  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  // Tracing off: this bench isolates the fault-site checks themselves.
  k.tracer().set_enabled(false);

  FaultConfig filtered;
  filtered.enabled = true;
  filtered.error = Errno::kEIO;
  filtered.pid = 1 << 20;  // matches no task
  FaultConfig prob;
  prob.enabled = true;
  prob.error = Errno::kEMFILE;
  prob.prob_num = 1;
  prob.prob_den = 1024;
  prob.seed = 7;

  struct Config {
    const char* name;
    const FaultConfig* cfg;  // nullptr = disabled
  };
  const Config kConfigs[] = {
      {"disabled", nullptr},
      {"armed-filtered", &filtered},
      {"armed-1/1024", &prob},
  };

  std::vector<Row> rows;
  double base[2] = {0, 0};
  for (const Config& cfg : kConfigs) {
    k.faults().Reset();
    if (cfg.cfg != nullptr) {
      k.faults().Configure(FaultSite::kFdAlloc, *cfg.cfg).take();
    }

    double ns[2];
    ns[0] = NsPerOp([&] { (void)k.GetPid(alice); }, kIters, kReps);
    ns[1] = NsPerOp(
        [&] {
          auto fd = k.Open(alice, "/etc/hosts", kORdOnly);
          if (fd.ok()) {
            (void)k.Close(alice, fd.value());
          }
        },
        kIters, kReps);

    const char* workloads[2] = {"getpid", "open+close"};
    for (int w = 0; w < 2; ++w) {
      if (cfg.cfg == nullptr) {
        base[w] = ns[w];
      }
      Row row;
      row.workload = workloads[w];
      row.config = cfg.name;
      row.ns_per_op = ns[w];
      row.overhead_vs_disabled_pct = base[w] > 0 ? (ns[w] / base[w] - 1.0) * 100.0 : 0;
      rows.push_back(row);
      std::printf("%-10s %-15s %9.2f ns/op  %+7.2f%%\n", workloads[w], cfg.name, ns[w],
                  row.overhead_vs_disabled_pct);
    }
  }
  k.faults().Reset();
  k.tracer().set_enabled(true);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"faults\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"reps\": %d,\n  \"rows\": [\n", kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_vs_disabled_pct\": %.2f}%s\n",
                 rows[i].workload.c_str(), rows[i].config.c_str(), rows[i].ns_per_op,
                 rows[i].overhead_vs_disabled_pct, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"note\": \"rows_pre_armed_mask: the BENCH_faults.json rows "
               "committed by the PR that introduced this bench, i.e. the "
               "armed-path cost before the per-site precomputed armed mask "
               "(per-site config walk + evaluations-counter RMW on every "
               "armed-site crossing). Recorded on that PR's host; absolute "
               "ns/op varies across hosts, so compare "
               "overhead_vs_disabled_pct within each row set\",\n");
  std::fprintf(f, "  \"rows_pre_armed_mask\": [\n");
  struct BeforeRow {
    const char* workload;
    const char* config;
    double ns_per_op;
    double overhead_pct;
  };
  // The rows committed immediately before the armed-mask change (see git
  // history for BENCH_faults.json).
  const BeforeRow kBefore[] = {
      {"getpid", "disabled", 6.81, 0.00},
      {"open+close", "disabled", 744.36, 0.00},
      {"getpid", "armed-filtered", 6.86, 0.72},
      {"open+close", "armed-filtered", 764.88, 2.76},
      {"getpid", "armed-1/1024", 10.70, 57.12},
      {"open+close", "armed-1/1024", 946.09, 27.10},
  };
  constexpr size_t kBeforeCount = sizeof(kBefore) / sizeof(kBefore[0]);
  for (size_t i = 0; i < kBeforeCount; ++i) {
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_vs_disabled_pct\": %.2f}%s\n",
                 kBefore[i].workload, kBefore[i].config, kBefore[i].ns_per_op,
                 kBefore[i].overhead_pct, i + 1 < kBeforeCount ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
