// Table 1: summary of results — re-derives each headline number from the
// reproduction's own harnesses (exploit corpus, popularity data, policy
// matrix) side by side with the paper's values.

#include <cstdio>

#include "src/study/cves.h"
#include "src/study/loc_accounting.h"
#include "src/study/policy_matrix.h"
#include "src/study/popularity.h"

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 1 reproduction: summary of results ===\n\n");

  // Historical exploits deprivileged.
  SimSystem linux_sys(SimMode::kLinux);
  SimSystem protego_sys(SimMode::kProtego);
  int esc_linux = 0;
  int deprivileged = 0;
  std::vector<ExploitOutcome> on_linux = RunCorpus(linux_sys);
  std::vector<ExploitOutcome> on_protego = RunCorpus(protego_sys);
  for (size_t i = 0; i < on_linux.size(); ++i) {
    esc_linux += on_linux[i].escalated ? 1 : 0;
    deprivileged += (on_linux[i].escalated && !on_protego[i].escalated) ? 1 : 0;
  }

  // Interfaces whose policies moved into the kernel.
  int interfaces_ok = 0;
  for (const PolicyMatrixRow& row : PolicyMatrix()) {
    SimSystem sys(SimMode::kProtego);
    PolicyScenarioResult result = row.check(sys);
    if (result.permitted_case_ok && result.forbidden_case_ok) {
      ++interfaces_ok;
    }
  }

  TcbSummary summary = PaperSummary();
  std::printf("%-58s %10s %10s\n", "Metric", "paper", "repro");
  std::printf("%s\n", std::string(80, '-').c_str());
  std::printf("%-58s %10d %10s\n", "Net lines of code de-privileged", summary.paper_deprivileged,
              "(see T2)");
  std::printf("%-58s %9.1f%% %9.1f%%\n",
              "Deployed systems that can eliminate the setuid bit", summary.paper_coverage_pct,
              StudyCoveragePercent());
  std::printf("%-58s %7d/%d %7d/%d\n", "Historical exploits unprivileged on Protego",
              summary.paper_exploits, summary.paper_exploits, deprivileged, esc_linux);
  std::printf("%-58s %10s %10s\n", "Performance overheads", "<=7.4%", "(see T5)");
  std::printf("%-58s %10d %10d\n", "System calls changed", summary.paper_syscalls_changed, 8);
  std::printf("%-58s %10s %7d/%zu\n", "Studied interfaces enforced in-kernel", "9/9",
              interfaces_ok, PolicyMatrix().size());
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
