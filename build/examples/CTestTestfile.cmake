# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_delegation "/root/repo/build/examples/delegation")
set_tests_properties(example_delegation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_ping "/root/repo/build/examples/custom_ping")
set_tests_properties(example_custom_ping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_account_management "/root/repo/build/examples/account_management")
set_tests_properties(example_account_management PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_admin_policy "/root/repo/build/examples/admin_policy")
set_tests_properties(example_admin_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sandboxing "/root/repo/build/examples/sandboxing")
set_tests_properties(example_sandboxing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
