file(REMOVE_RECURSE
  "CMakeFiles/account_management.dir/account_management.cc.o"
  "CMakeFiles/account_management.dir/account_management.cc.o.d"
  "account_management"
  "account_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/account_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
