# Empty dependencies file for account_management.
# This may be replaced when dependencies are built.
