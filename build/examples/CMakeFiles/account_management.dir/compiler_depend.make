# Empty compiler generated dependencies file for account_management.
# This may be replaced when dependencies are built.
