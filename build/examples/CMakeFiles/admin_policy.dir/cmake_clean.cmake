file(REMOVE_RECURSE
  "CMakeFiles/admin_policy.dir/admin_policy.cc.o"
  "CMakeFiles/admin_policy.dir/admin_policy.cc.o.d"
  "admin_policy"
  "admin_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
