# Empty dependencies file for admin_policy.
# This may be replaced when dependencies are built.
