# Empty dependencies file for delegation.
# This may be replaced when dependencies are built.
