file(REMOVE_RECURSE
  "CMakeFiles/delegation.dir/delegation.cc.o"
  "CMakeFiles/delegation.dir/delegation.cc.o.d"
  "delegation"
  "delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
