# Empty dependencies file for sandboxing.
# This may be replaced when dependencies are built.
