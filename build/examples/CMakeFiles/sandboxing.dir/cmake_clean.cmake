file(REMOVE_RECURSE
  "CMakeFiles/sandboxing.dir/sandboxing.cc.o"
  "CMakeFiles/sandboxing.dir/sandboxing.cc.o.d"
  "sandboxing"
  "sandboxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandboxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
