file(REMOVE_RECURSE
  "CMakeFiles/custom_ping.dir/custom_ping.cc.o"
  "CMakeFiles/custom_ping.dir/custom_ping.cc.o.d"
  "custom_ping"
  "custom_ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
