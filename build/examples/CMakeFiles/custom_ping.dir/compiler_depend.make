# Empty compiler generated dependencies file for custom_ping.
# This may be replaced when dependencies are built.
