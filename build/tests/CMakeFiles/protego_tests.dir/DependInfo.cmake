
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/audit_test.cc" "tests/CMakeFiles/protego_tests.dir/audit_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/audit_test.cc.o.d"
  "/root/repo/tests/base_test.cc" "tests/CMakeFiles/protego_tests.dir/base_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/base_test.cc.o.d"
  "/root/repo/tests/config_property_test.cc" "tests/CMakeFiles/protego_tests.dir/config_property_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/config_property_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/protego_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/exploit_corpus_test.cc" "tests/CMakeFiles/protego_tests.dir/exploit_corpus_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/exploit_corpus_test.cc.o.d"
  "/root/repo/tests/functional_equivalence_test.cc" "tests/CMakeFiles/protego_tests.dir/functional_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/functional_equivalence_test.cc.o.d"
  "/root/repo/tests/iptables_test.cc" "tests/CMakeFiles/protego_tests.dir/iptables_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/iptables_test.cc.o.d"
  "/root/repo/tests/kernel_test.cc" "tests/CMakeFiles/protego_tests.dir/kernel_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/kernel_test.cc.o.d"
  "/root/repo/tests/lsm_test.cc" "tests/CMakeFiles/protego_tests.dir/lsm_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/lsm_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/protego_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/namespace_test.cc" "tests/CMakeFiles/protego_tests.dir/namespace_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/namespace_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/protego_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/policy_matrix_test.cc" "tests/CMakeFiles/protego_tests.dir/policy_matrix_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/policy_matrix_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/protego_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/protego_lsm_test.cc" "tests/CMakeFiles/protego_tests.dir/protego_lsm_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/protego_lsm_test.cc.o.d"
  "/root/repo/tests/services_test.cc" "tests/CMakeFiles/protego_tests.dir/services_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/services_test.cc.o.d"
  "/root/repo/tests/setcap_test.cc" "tests/CMakeFiles/protego_tests.dir/setcap_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/setcap_test.cc.o.d"
  "/root/repo/tests/sim_smoke_test.cc" "tests/CMakeFiles/protego_tests.dir/sim_smoke_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/sim_smoke_test.cc.o.d"
  "/root/repo/tests/study_test.cc" "tests/CMakeFiles/protego_tests.dir/study_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/study_test.cc.o.d"
  "/root/repo/tests/userland_test.cc" "tests/CMakeFiles/protego_tests.dir/userland_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/userland_test.cc.o.d"
  "/root/repo/tests/vfs_test.cc" "tests/CMakeFiles/protego_tests.dir/vfs_test.cc.o" "gcc" "tests/CMakeFiles/protego_tests.dir/vfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/protego_study.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/protego_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/protego_services.dir/DependInfo.cmake"
  "/root/repo/build/src/userland/CMakeFiles/protego_userland.dir/DependInfo.cmake"
  "/root/repo/build/src/protego/CMakeFiles/protego_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/protego_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel_types.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/protego_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/protego_config.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
