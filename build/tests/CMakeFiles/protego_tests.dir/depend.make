# Empty dependencies file for protego_tests.
# This may be replaced when dependencies are built.
