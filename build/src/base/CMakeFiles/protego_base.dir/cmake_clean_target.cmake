file(REMOVE_RECURSE
  "libprotego_base.a"
)
