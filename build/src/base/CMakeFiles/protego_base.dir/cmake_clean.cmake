file(REMOVE_RECURSE
  "CMakeFiles/protego_base.dir/clock.cc.o"
  "CMakeFiles/protego_base.dir/clock.cc.o.d"
  "CMakeFiles/protego_base.dir/hash.cc.o"
  "CMakeFiles/protego_base.dir/hash.cc.o.d"
  "CMakeFiles/protego_base.dir/lexer.cc.o"
  "CMakeFiles/protego_base.dir/lexer.cc.o.d"
  "CMakeFiles/protego_base.dir/log.cc.o"
  "CMakeFiles/protego_base.dir/log.cc.o.d"
  "CMakeFiles/protego_base.dir/result.cc.o"
  "CMakeFiles/protego_base.dir/result.cc.o.d"
  "CMakeFiles/protego_base.dir/strings.cc.o"
  "CMakeFiles/protego_base.dir/strings.cc.o.d"
  "libprotego_base.a"
  "libprotego_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
