# Empty compiler generated dependencies file for protego_base.
# This may be replaced when dependencies are built.
