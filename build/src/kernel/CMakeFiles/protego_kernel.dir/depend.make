# Empty dependencies file for protego_kernel.
# This may be replaced when dependencies are built.
