file(REMOVE_RECURSE
  "libprotego_kernel.a"
)
