file(REMOVE_RECURSE
  "CMakeFiles/protego_kernel.dir/kernel.cc.o"
  "CMakeFiles/protego_kernel.dir/kernel.cc.o.d"
  "libprotego_kernel.a"
  "libprotego_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
