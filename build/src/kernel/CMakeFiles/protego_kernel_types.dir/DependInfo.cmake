
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/capability.cc" "src/kernel/CMakeFiles/protego_kernel_types.dir/capability.cc.o" "gcc" "src/kernel/CMakeFiles/protego_kernel_types.dir/capability.cc.o.d"
  "/root/repo/src/kernel/cred.cc" "src/kernel/CMakeFiles/protego_kernel_types.dir/cred.cc.o" "gcc" "src/kernel/CMakeFiles/protego_kernel_types.dir/cred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
