file(REMOVE_RECURSE
  "libprotego_kernel_types.a"
)
