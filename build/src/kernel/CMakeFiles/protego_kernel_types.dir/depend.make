# Empty dependencies file for protego_kernel_types.
# This may be replaced when dependencies are built.
