file(REMOVE_RECURSE
  "CMakeFiles/protego_kernel_types.dir/capability.cc.o"
  "CMakeFiles/protego_kernel_types.dir/capability.cc.o.d"
  "CMakeFiles/protego_kernel_types.dir/cred.cc.o"
  "CMakeFiles/protego_kernel_types.dir/cred.cc.o.d"
  "libprotego_kernel_types.a"
  "libprotego_kernel_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_kernel_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
