file(REMOVE_RECURSE
  "libprotego_sim.a"
)
