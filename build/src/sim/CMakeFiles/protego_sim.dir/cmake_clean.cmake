file(REMOVE_RECURSE
  "CMakeFiles/protego_sim.dir/system.cc.o"
  "CMakeFiles/protego_sim.dir/system.cc.o.d"
  "libprotego_sim.a"
  "libprotego_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
