# Empty dependencies file for protego_sim.
# This may be replaced when dependencies are built.
