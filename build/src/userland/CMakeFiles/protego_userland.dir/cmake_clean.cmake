file(REMOVE_RECURSE
  "CMakeFiles/protego_userland.dir/account_utils.cc.o"
  "CMakeFiles/protego_userland.dir/account_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/coverage.cc.o"
  "CMakeFiles/protego_userland.dir/coverage.cc.o.d"
  "CMakeFiles/protego_userland.dir/daemon_utils.cc.o"
  "CMakeFiles/protego_userland.dir/daemon_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/delegation_utils.cc.o"
  "CMakeFiles/protego_userland.dir/delegation_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/install.cc.o"
  "CMakeFiles/protego_userland.dir/install.cc.o.d"
  "CMakeFiles/protego_userland.dir/mount_utils.cc.o"
  "CMakeFiles/protego_userland.dir/mount_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/net_utils.cc.o"
  "CMakeFiles/protego_userland.dir/net_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/sandbox_utils.cc.o"
  "CMakeFiles/protego_userland.dir/sandbox_utils.cc.o.d"
  "CMakeFiles/protego_userland.dir/util.cc.o"
  "CMakeFiles/protego_userland.dir/util.cc.o.d"
  "libprotego_userland.a"
  "libprotego_userland.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_userland.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
