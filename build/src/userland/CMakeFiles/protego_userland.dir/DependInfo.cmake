
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/userland/account_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/account_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/account_utils.cc.o.d"
  "/root/repo/src/userland/coverage.cc" "src/userland/CMakeFiles/protego_userland.dir/coverage.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/coverage.cc.o.d"
  "/root/repo/src/userland/daemon_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/daemon_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/daemon_utils.cc.o.d"
  "/root/repo/src/userland/delegation_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/delegation_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/delegation_utils.cc.o.d"
  "/root/repo/src/userland/install.cc" "src/userland/CMakeFiles/protego_userland.dir/install.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/install.cc.o.d"
  "/root/repo/src/userland/mount_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/mount_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/mount_utils.cc.o.d"
  "/root/repo/src/userland/net_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/net_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/net_utils.cc.o.d"
  "/root/repo/src/userland/sandbox_utils.cc" "src/userland/CMakeFiles/protego_userland.dir/sandbox_utils.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/sandbox_utils.cc.o.d"
  "/root/repo/src/userland/util.cc" "src/userland/CMakeFiles/protego_userland.dir/util.cc.o" "gcc" "src/userland/CMakeFiles/protego_userland.dir/util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protego/CMakeFiles/protego_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/protego_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel_types.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/protego_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/protego_config.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
