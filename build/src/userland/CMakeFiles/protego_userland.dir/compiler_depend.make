# Empty compiler generated dependencies file for protego_userland.
# This may be replaced when dependencies are built.
