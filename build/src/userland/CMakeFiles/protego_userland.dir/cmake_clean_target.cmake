file(REMOVE_RECURSE
  "libprotego_userland.a"
)
