file(REMOVE_RECURSE
  "libprotego_config.a"
)
