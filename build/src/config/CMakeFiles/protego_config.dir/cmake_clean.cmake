file(REMOVE_RECURSE
  "CMakeFiles/protego_config.dir/bindconf.cc.o"
  "CMakeFiles/protego_config.dir/bindconf.cc.o.d"
  "CMakeFiles/protego_config.dir/fstab.cc.o"
  "CMakeFiles/protego_config.dir/fstab.cc.o.d"
  "CMakeFiles/protego_config.dir/passwd_db.cc.o"
  "CMakeFiles/protego_config.dir/passwd_db.cc.o.d"
  "CMakeFiles/protego_config.dir/ppp_options.cc.o"
  "CMakeFiles/protego_config.dir/ppp_options.cc.o.d"
  "CMakeFiles/protego_config.dir/sudoers.cc.o"
  "CMakeFiles/protego_config.dir/sudoers.cc.o.d"
  "libprotego_config.a"
  "libprotego_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
