
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/bindconf.cc" "src/config/CMakeFiles/protego_config.dir/bindconf.cc.o" "gcc" "src/config/CMakeFiles/protego_config.dir/bindconf.cc.o.d"
  "/root/repo/src/config/fstab.cc" "src/config/CMakeFiles/protego_config.dir/fstab.cc.o" "gcc" "src/config/CMakeFiles/protego_config.dir/fstab.cc.o.d"
  "/root/repo/src/config/passwd_db.cc" "src/config/CMakeFiles/protego_config.dir/passwd_db.cc.o" "gcc" "src/config/CMakeFiles/protego_config.dir/passwd_db.cc.o.d"
  "/root/repo/src/config/ppp_options.cc" "src/config/CMakeFiles/protego_config.dir/ppp_options.cc.o" "gcc" "src/config/CMakeFiles/protego_config.dir/ppp_options.cc.o.d"
  "/root/repo/src/config/sudoers.cc" "src/config/CMakeFiles/protego_config.dir/sudoers.cc.o" "gcc" "src/config/CMakeFiles/protego_config.dir/sudoers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
