# Empty compiler generated dependencies file for protego_config.
# This may be replaced when dependencies are built.
