# Empty compiler generated dependencies file for protego_core.
# This may be replaced when dependencies are built.
