file(REMOVE_RECURSE
  "libprotego_core.a"
)
