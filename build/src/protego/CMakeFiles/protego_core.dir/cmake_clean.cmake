file(REMOVE_RECURSE
  "CMakeFiles/protego_core.dir/default_rules.cc.o"
  "CMakeFiles/protego_core.dir/default_rules.cc.o.d"
  "CMakeFiles/protego_core.dir/dmcrypt.cc.o"
  "CMakeFiles/protego_core.dir/dmcrypt.cc.o.d"
  "CMakeFiles/protego_core.dir/proc_iface.cc.o"
  "CMakeFiles/protego_core.dir/proc_iface.cc.o.d"
  "CMakeFiles/protego_core.dir/protego_lsm.cc.o"
  "CMakeFiles/protego_core.dir/protego_lsm.cc.o.d"
  "libprotego_core.a"
  "libprotego_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
