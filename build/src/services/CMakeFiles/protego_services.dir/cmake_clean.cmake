file(REMOVE_RECURSE
  "CMakeFiles/protego_services.dir/auth_service.cc.o"
  "CMakeFiles/protego_services.dir/auth_service.cc.o.d"
  "CMakeFiles/protego_services.dir/monitor_daemon.cc.o"
  "CMakeFiles/protego_services.dir/monitor_daemon.cc.o.d"
  "libprotego_services.a"
  "libprotego_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
