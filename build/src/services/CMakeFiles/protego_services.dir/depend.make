# Empty dependencies file for protego_services.
# This may be replaced when dependencies are built.
