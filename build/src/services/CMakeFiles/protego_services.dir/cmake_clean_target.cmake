file(REMOVE_RECURSE
  "libprotego_services.a"
)
