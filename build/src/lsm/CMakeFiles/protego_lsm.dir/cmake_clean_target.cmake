file(REMOVE_RECURSE
  "libprotego_lsm.a"
)
