# Empty dependencies file for protego_lsm.
# This may be replaced when dependencies are built.
