file(REMOVE_RECURSE
  "CMakeFiles/protego_lsm.dir/apparmor.cc.o"
  "CMakeFiles/protego_lsm.dir/apparmor.cc.o.d"
  "CMakeFiles/protego_lsm.dir/stack.cc.o"
  "CMakeFiles/protego_lsm.dir/stack.cc.o.d"
  "libprotego_lsm.a"
  "libprotego_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
