file(REMOVE_RECURSE
  "CMakeFiles/protego_study.dir/cves.cc.o"
  "CMakeFiles/protego_study.dir/cves.cc.o.d"
  "CMakeFiles/protego_study.dir/functional.cc.o"
  "CMakeFiles/protego_study.dir/functional.cc.o.d"
  "CMakeFiles/protego_study.dir/loc_accounting.cc.o"
  "CMakeFiles/protego_study.dir/loc_accounting.cc.o.d"
  "CMakeFiles/protego_study.dir/policy_matrix.cc.o"
  "CMakeFiles/protego_study.dir/policy_matrix.cc.o.d"
  "CMakeFiles/protego_study.dir/popularity.cc.o"
  "CMakeFiles/protego_study.dir/popularity.cc.o.d"
  "CMakeFiles/protego_study.dir/remaining.cc.o"
  "CMakeFiles/protego_study.dir/remaining.cc.o.d"
  "libprotego_study.a"
  "libprotego_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
