# Empty dependencies file for protego_study.
# This may be replaced when dependencies are built.
