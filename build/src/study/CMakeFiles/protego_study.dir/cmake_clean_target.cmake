file(REMOVE_RECURSE
  "libprotego_study.a"
)
