# Empty compiler generated dependencies file for protego_net.
# This may be replaced when dependencies are built.
