file(REMOVE_RECURSE
  "libprotego_net.a"
)
