file(REMOVE_RECURSE
  "CMakeFiles/protego_net.dir/netfilter.cc.o"
  "CMakeFiles/protego_net.dir/netfilter.cc.o.d"
  "CMakeFiles/protego_net.dir/network.cc.o"
  "CMakeFiles/protego_net.dir/network.cc.o.d"
  "CMakeFiles/protego_net.dir/routing.cc.o"
  "CMakeFiles/protego_net.dir/routing.cc.o.d"
  "libprotego_net.a"
  "libprotego_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
