
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/netfilter.cc" "src/net/CMakeFiles/protego_net.dir/netfilter.cc.o" "gcc" "src/net/CMakeFiles/protego_net.dir/netfilter.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/protego_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/protego_net.dir/network.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/net/CMakeFiles/protego_net.dir/routing.cc.o" "gcc" "src/net/CMakeFiles/protego_net.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
