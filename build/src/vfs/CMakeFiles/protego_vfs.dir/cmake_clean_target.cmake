file(REMOVE_RECURSE
  "libprotego_vfs.a"
)
