
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/inode.cc" "src/vfs/CMakeFiles/protego_vfs.dir/inode.cc.o" "gcc" "src/vfs/CMakeFiles/protego_vfs.dir/inode.cc.o.d"
  "/root/repo/src/vfs/vfs.cc" "src/vfs/CMakeFiles/protego_vfs.dir/vfs.cc.o" "gcc" "src/vfs/CMakeFiles/protego_vfs.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
