# Empty compiler generated dependencies file for protego_vfs.
# This may be replaced when dependencies are built.
