file(REMOVE_RECURSE
  "CMakeFiles/protego_vfs.dir/inode.cc.o"
  "CMakeFiles/protego_vfs.dir/inode.cc.o.d"
  "CMakeFiles/protego_vfs.dir/vfs.cc.o"
  "CMakeFiles/protego_vfs.dir/vfs.cc.o.d"
  "libprotego_vfs.a"
  "libprotego_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protego_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
