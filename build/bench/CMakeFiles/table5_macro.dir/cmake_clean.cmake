file(REMOVE_RECURSE
  "CMakeFiles/table5_macro.dir/table5_macro.cc.o"
  "CMakeFiles/table5_macro.dir/table5_macro.cc.o.d"
  "table5_macro"
  "table5_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
