# Empty compiler generated dependencies file for table5_macro.
# This may be replaced when dependencies are built.
