# Empty compiler generated dependencies file for table4_policy_study.
# This may be replaced when dependencies are built.
