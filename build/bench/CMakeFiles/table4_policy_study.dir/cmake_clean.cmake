file(REMOVE_RECURSE
  "CMakeFiles/table4_policy_study.dir/table4_policy_study.cc.o"
  "CMakeFiles/table4_policy_study.dir/table4_policy_study.cc.o.d"
  "table4_policy_study"
  "table4_policy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_policy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
