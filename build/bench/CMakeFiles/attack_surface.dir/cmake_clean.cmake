file(REMOVE_RECURSE
  "CMakeFiles/attack_surface.dir/attack_surface.cc.o"
  "CMakeFiles/attack_surface.dir/attack_surface.cc.o.d"
  "attack_surface"
  "attack_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
