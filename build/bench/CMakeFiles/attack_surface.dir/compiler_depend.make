# Empty compiler generated dependencies file for attack_surface.
# This may be replaced when dependencies are built.
