file(REMOVE_RECURSE
  "CMakeFiles/table3_popularity.dir/table3_popularity.cc.o"
  "CMakeFiles/table3_popularity.dir/table3_popularity.cc.o.d"
  "table3_popularity"
  "table3_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
