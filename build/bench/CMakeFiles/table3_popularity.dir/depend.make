# Empty dependencies file for table3_popularity.
# This may be replaced when dependencies are built.
