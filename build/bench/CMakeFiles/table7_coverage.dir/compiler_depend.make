# Empty compiler generated dependencies file for table7_coverage.
# This may be replaced when dependencies are built.
