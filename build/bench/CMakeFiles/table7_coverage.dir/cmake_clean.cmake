file(REMOVE_RECURSE
  "CMakeFiles/table7_coverage.dir/table7_coverage.cc.o"
  "CMakeFiles/table7_coverage.dir/table7_coverage.cc.o.d"
  "table7_coverage"
  "table7_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
