file(REMOVE_RECURSE
  "CMakeFiles/table5_lmbench.dir/table5_lmbench.cc.o"
  "CMakeFiles/table5_lmbench.dir/table5_lmbench.cc.o.d"
  "table5_lmbench"
  "table5_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
