# Empty compiler generated dependencies file for table5_lmbench.
# This may be replaced when dependencies are built.
