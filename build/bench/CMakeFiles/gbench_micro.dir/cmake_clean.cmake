file(REMOVE_RECURSE
  "CMakeFiles/gbench_micro.dir/gbench_micro.cc.o"
  "CMakeFiles/gbench_micro.dir/gbench_micro.cc.o.d"
  "gbench_micro"
  "gbench_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
