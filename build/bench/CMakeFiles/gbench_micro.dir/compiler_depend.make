# Empty compiler generated dependencies file for gbench_micro.
# This may be replaced when dependencies are built.
