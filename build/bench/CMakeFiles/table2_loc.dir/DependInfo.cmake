
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_loc.cc" "bench/CMakeFiles/table2_loc.dir/table2_loc.cc.o" "gcc" "bench/CMakeFiles/table2_loc.dir/table2_loc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/protego_study.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/protego_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/protego_services.dir/DependInfo.cmake"
  "/root/repo/build/src/userland/CMakeFiles/protego_userland.dir/DependInfo.cmake"
  "/root/repo/build/src/protego/CMakeFiles/protego_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/protego_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/protego_kernel_types.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/protego_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/protego_config.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/protego_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/protego_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
