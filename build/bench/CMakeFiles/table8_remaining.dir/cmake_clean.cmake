file(REMOVE_RECURSE
  "CMakeFiles/table8_remaining.dir/table8_remaining.cc.o"
  "CMakeFiles/table8_remaining.dir/table8_remaining.cc.o.d"
  "table8_remaining"
  "table8_remaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_remaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
