# Empty dependencies file for table8_remaining.
# This may be replaced when dependencies are built.
