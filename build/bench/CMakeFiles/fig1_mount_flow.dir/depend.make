# Empty dependencies file for fig1_mount_flow.
# This may be replaced when dependencies are built.
