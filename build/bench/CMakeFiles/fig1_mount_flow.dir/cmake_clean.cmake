file(REMOVE_RECURSE
  "CMakeFiles/fig1_mount_flow.dir/fig1_mount_flow.cc.o"
  "CMakeFiles/fig1_mount_flow.dir/fig1_mount_flow.cc.o.d"
  "fig1_mount_flow"
  "fig1_mount_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mount_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
