// Unit tests for the LSM framework: verdict combination across stacked
// modules, commoncap, and the AppArmor baseline.

#include <gtest/gtest.h>

#include "src/lsm/apparmor.h"
#include "src/lsm/capability_module.h"
#include "src/lsm/stack.h"

namespace protego {
namespace {

// A module with a fixed opinion on every hook, for combination tests.
class FixedModule : public SecurityModule {
 public:
  explicit FixedModule(HookVerdict verdict) : verdict_(verdict) {}
  const char* name() const override { return "fixed"; }
  HookVerdict SbMount(const Task&, const MountRequest&, bool*) override { return verdict_; }

 private:
  HookVerdict verdict_;
};

Task MakeTask(Uid uid, std::string exe = "/bin/x") {
  Task t;
  t.cred = Cred::ForUser(uid, uid);
  t.exe_path = std::move(exe);
  return t;
}

TEST(LsmStackTest, DenyBeatsAllowBeatsDefault) {
  MountRequest req;
  Task task = MakeTask(1000);
  {
    LsmStack stack;
    stack.Register(std::make_unique<FixedModule>(HookVerdict::kDefault));
    stack.Register(std::make_unique<FixedModule>(HookVerdict::kAllow));
    EXPECT_EQ(stack.SbMount(task, req), HookVerdict::kAllow);
  }
  {
    LsmStack stack;
    stack.Register(std::make_unique<FixedModule>(HookVerdict::kAllow));
    stack.Register(std::make_unique<FixedModule>(HookVerdict::kDeny));
    EXPECT_EQ(stack.SbMount(task, req), HookVerdict::kDeny);
  }
  {
    LsmStack stack;
    stack.Register(std::make_unique<FixedModule>(HookVerdict::kDefault));
    EXPECT_EQ(stack.SbMount(task, req), HookVerdict::kDefault);
  }
  {
    LsmStack stack;  // empty stack
    EXPECT_EQ(stack.SbMount(task, req), HookVerdict::kDefault);
  }
}

TEST(LsmStackTest, CapableIsConjunction) {
  LsmStack stack;
  stack.Register(std::make_unique<CapabilityModule>());
  Task root = MakeTask(0);
  root.cred = Cred::Root();
  Task user = MakeTask(1000);
  EXPECT_TRUE(stack.Capable(root, Capability::kSysAdmin));
  EXPECT_FALSE(stack.Capable(user, Capability::kSysAdmin));
  // A confined profile further restricts even a capable task.
  auto apparmor = std::make_unique<AppArmorModule>();
  AaProfile profile;
  profile.binary = "/bin/x";
  profile.bound_caps = true;
  profile.capability_bound = CapSet::Of({Capability::kNetRaw});
  apparmor->LoadProfile(profile);
  stack.Register(std::move(apparmor));
  EXPECT_FALSE(stack.Capable(root, Capability::kSysAdmin));
  EXPECT_TRUE(stack.Capable(root, Capability::kNetRaw));
}

TEST(LsmStackTest, FindLocatesModuleByName) {
  LsmStack stack;
  stack.Register(std::make_unique<CapabilityModule>());
  stack.Register(std::make_unique<AppArmorModule>());
  EXPECT_NE(stack.Find("apparmor"), nullptr);
  EXPECT_NE(stack.Find("capability"), nullptr);
  EXPECT_EQ(stack.Find("selinux"), nullptr);
  EXPECT_EQ(stack.size(), 2u);
}

TEST(AppArmorTest, FileRulesConfineOnlyProfiledBinaries) {
  AppArmorModule aa;
  AaProfile profile;
  profile.binary = "/usr/sbin/confined";
  profile.file_rules.push_back({"/var/lib/app/*", kMayRead | kMayWrite});
  profile.file_rules.push_back({"/etc/app.conf", kMayRead});
  aa.LoadProfile(profile);

  Inode inode;
  inode.mode = kIfReg | 0666;
  bool cacheable = true;
  Task confined = MakeTask(1000, "/usr/sbin/confined");
  Task free_task = MakeTask(1000, "/usr/bin/other");

  EXPECT_EQ(aa.InodePermission(confined, "/var/lib/app/data", inode, kMayWrite, &cacheable),
            HookVerdict::kDefault);
  EXPECT_EQ(aa.InodePermission(confined, "/etc/app.conf", inode, kMayRead, &cacheable),
            HookVerdict::kDefault);
  EXPECT_EQ(aa.InodePermission(confined, "/etc/app.conf", inode, kMayWrite, &cacheable),
            HookVerdict::kDeny);
  EXPECT_EQ(aa.InodePermission(confined, "/etc/shadow", inode, kMayRead, &cacheable), HookVerdict::kDeny);
  // Unconfined binaries are untouched.
  EXPECT_EQ(aa.InodePermission(free_task, "/etc/shadow", inode, kMayRead, &cacheable),
            HookVerdict::kDefault);
  EXPECT_GE(aa.denials().size(), 2u);
}

TEST(AppArmorTest, ComplainModeLogsButAllows) {
  AppArmorModule aa;
  AaProfile profile;
  profile.binary = "/bin/learning";
  profile.enforce = false;
  profile.file_rules.push_back({"/nothing", kMayRead});
  aa.LoadProfile(profile);
  Inode inode;
  inode.mode = kIfReg | 0666;
  bool cacheable = true;
  Task task = MakeTask(1000, "/bin/learning");
  EXPECT_EQ(aa.InodePermission(task, "/etc/anything", inode, kMayRead, &cacheable),
            HookVerdict::kDefault);
  EXPECT_EQ(aa.denials().size(), 1u);  // recorded anyway
}

TEST(AppArmorTest, ProfilesCanBeRemoved) {
  AppArmorModule aa;
  AaProfile profile;
  profile.binary = "/bin/tmp";
  aa.LoadProfile(profile);
  EXPECT_EQ(aa.profile_count(), 1u);
  aa.RemoveProfile("/bin/tmp");
  EXPECT_EQ(aa.profile_count(), 0u);
  EXPECT_EQ(aa.FindProfile("/bin/tmp"), nullptr);
}

TEST(CapSetTest, BasicOperations) {
  CapSet s = CapSet::Of({Capability::kSetuid, Capability::kNetRaw});
  EXPECT_TRUE(s.Has(Capability::kSetuid));
  EXPECT_FALSE(s.Has(Capability::kSysAdmin));
  s.Remove(Capability::kSetuid);
  EXPECT_FALSE(s.Has(Capability::kSetuid));
  EXPECT_EQ(CapSet::All().ToString().find("CAP_CHOWN"), 0u);
  EXPECT_EQ(CapSet{}.ToString(), "-");
  EXPECT_EQ(s.ToString(), "CAP_NET_RAW");
}

TEST(CredTest, RootGetsFullCaps) {
  Cred root = Cred::Root();
  EXPECT_TRUE(root.effective.Has(Capability::kSysAdmin));
  Cred user = Cred::ForUser(1000, 1000, {50, 115});
  EXPECT_TRUE(user.effective.Empty());
  EXPECT_TRUE(user.InGroup(50));
  EXPECT_TRUE(user.InGroup(1000));  // primary gid
  EXPECT_FALSE(user.InGroup(51));
  EXPECT_NE(user.ToString().find("uid=1000"), std::string::npos);
}

}  // namespace
}  // namespace protego
