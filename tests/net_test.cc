// Unit tests for the network substrate: netfilter, routing, sockets, packet
// delivery, and remote-host behaviour.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/protego/default_rules.h"

namespace protego {
namespace {

Packet UdpPacket(Ipv4 dst, uint16_t dst_port, uint16_t src_port = 0) {
  Packet p;
  p.l4_proto = kProtoUdp;
  p.dst_ip = dst;
  p.dst_port = dst_port;
  p.src_port = src_port;
  return p;
}

TEST(NetfilterTest, FirstMatchWinsDefaultAccept) {
  Netfilter nf;
  Packet p = UdpPacket(kLocalhostIp, 53);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, p), NfVerdict::kAccept);  // empty = accept

  NfRule drop;
  drop.chain = NfChain::kOutput;
  drop.match.l4_proto = kProtoUdp;
  drop.verdict = NfVerdict::kDrop;
  nf.Append(drop);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, p), NfVerdict::kDrop);
  EXPECT_EQ(nf.Evaluate(NfChain::kInput, p), NfVerdict::kAccept);  // other chain

  NfRule accept_first;
  accept_first.chain = NfChain::kOutput;
  accept_first.match.l4_proto = kProtoUdp;
  accept_first.match.dst_port_min = 53;
  accept_first.match.dst_port_max = 53;
  accept_first.verdict = NfVerdict::kAccept;
  nf.Insert(accept_first);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, p), NfVerdict::kAccept);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, UdpPacket(kLocalhostIp, 54)), NfVerdict::kDrop);
}

TEST(NetfilterTest, DeleteByCommentAndCounters) {
  Netfilter nf;
  NfRule r;
  r.verdict = NfVerdict::kDrop;
  r.comment = "tagged";
  nf.Append(r);
  nf.Append(r);
  EXPECT_EQ(nf.RuleCount(NfChain::kOutput), 2u);
  (void)nf.Evaluate(NfChain::kOutput, UdpPacket(1, 1));
  EXPECT_EQ(nf.evaluated(), 1u);
  EXPECT_EQ(nf.dropped(), 1u);
  EXPECT_EQ(nf.DeleteByComment("tagged"), 2);
  EXPECT_EQ(nf.RuleCount(NfChain::kOutput), 0u);
}

TEST(NetfilterTest, SpoofedSourcePortMatch) {
  Network net;
  Socket& victim = net.CreateSocket(kAfInet, kSockDgram, 0, /*owner=*/1000, "/bin/victim");
  ASSERT_TRUE(net.Bind(victim, 4000).ok());

  NfRule rule;
  rule.chain = NfChain::kOutput;
  rule.match.src_port_owned_by_other = true;
  rule.verdict = NfVerdict::kDrop;
  net.netfilter().Append(rule);

  // Attacker (uid 1001) claims the victim's port: dropped.
  Packet forged = UdpPacket(kLocalhostIp, 9, /*src_port=*/4000);
  forged.sender_uid = 1001;
  EXPECT_EQ(net.netfilter().Evaluate(NfChain::kOutput, forged), NfVerdict::kDrop);
  // The owner herself is fine.
  forged.sender_uid = 1000;
  EXPECT_EQ(net.netfilter().Evaluate(NfChain::kOutput, forged), NfVerdict::kAccept);
  // Unbound ports are fine.
  Packet honest = UdpPacket(kLocalhostIp, 9, /*src_port=*/5000);
  honest.sender_uid = 1001;
  EXPECT_EQ(net.netfilter().Evaluate(NfChain::kOutput, honest), NfVerdict::kAccept);
}

TEST(DefaultRawRules, EncodeTheSafePacketSet) {
  Netfilter nf;
  Network net;  // port-owner callback not needed for these cases
  nf.set_port_owner_fn([&net](int proto, uint16_t port) { return net.PortOwner(proto, port); });
  InstallDefaultRawSocketRules(&nf);

  auto raw = [](int proto, int icmp_type, uint16_t dst_port) {
    Packet p;
    p.l4_proto = proto;
    p.icmp_type = icmp_type;
    p.dst_port = dst_port;
    p.from_raw_socket = true;
    return p;
  };
  // Safe: ICMP echo, traceroute UDP probes, ARP.
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoIcmp, kIcmpEchoRequest, 0)),
            NfVerdict::kAccept);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoUdp, -1, 33435)), NfVerdict::kAccept);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoArp, -1, 0)), NfVerdict::kAccept);
  // Unsafe: raw TCP, low-port raw UDP, weird ICMP types.
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoTcp, -1, 80)), NfVerdict::kDrop);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoUdp, -1, 53)), NfVerdict::kDrop);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoIcmp, kIcmpDestUnreachable, 0)),
            NfVerdict::kDrop);
  // Non-raw traffic is untouched by the raw ruleset.
  Packet normal = UdpPacket(kLocalhostIp, 53);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, normal), NfVerdict::kAccept);
  // And the defaults can be removed wholesale.
  RemoveDefaultRawSocketRules(&nf);
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw(kProtoTcp, -1, 80)), NfVerdict::kAccept);
}

TEST(RoutingTest, LongestPrefixMatch) {
  RoutingTable rt;
  ASSERT_TRUE(rt.Add({MakeIp(10, 0, 0, 0), 8, 0, "eth0", 0}).ok());
  ASSERT_TRUE(rt.Add({MakeIp(10, 1, 0, 0), 16, MakeIp(10, 0, 0, 1), "eth1", 0}).ok());
  EXPECT_EQ(rt.Lookup(MakeIp(10, 1, 2, 3))->dev, "eth1");
  EXPECT_EQ(rt.Lookup(MakeIp(10, 2, 2, 3))->dev, "eth0");
  EXPECT_FALSE(rt.Lookup(MakeIp(11, 0, 0, 1)).has_value());
  // Default route catches everything.
  ASSERT_TRUE(rt.Add({0, 0, MakeIp(10, 0, 0, 1), "wan", 0}).ok());
  EXPECT_EQ(rt.Lookup(MakeIp(11, 0, 0, 1))->dev, "wan");
}

TEST(RoutingTest, ConflictIsOverlap) {
  RoutingTable rt;
  ASSERT_TRUE(rt.Add({MakeIp(10, 0, 0, 0), 24, 0, "eth0", 0}).ok());
  // Contained, containing, and equal prefixes all conflict.
  EXPECT_TRUE(rt.Conflicts({MakeIp(10, 0, 0, 128), 25, 0, "ppp0", 0}));
  EXPECT_TRUE(rt.Conflicts({MakeIp(10, 0, 0, 0), 16, 0, "ppp0", 0}));
  EXPECT_TRUE(rt.Conflicts({MakeIp(10, 0, 0, 0), 24, 0, "ppp0", 0}));
  // Disjoint space does not.
  EXPECT_FALSE(rt.Conflicts({MakeIp(172, 16, 0, 0), 16, 0, "ppp0", 0}));
  EXPECT_FALSE(rt.Conflicts({MakeIp(10, 0, 1, 0), 24, 0, "ppp0", 0}));
}

TEST(RoutingTest, AddRemoveErrnos) {
  RoutingTable rt;
  ASSERT_TRUE(rt.Add({MakeIp(10, 0, 0, 0), 24, 0, "eth0", 0}).ok());
  EXPECT_EQ(rt.Add({MakeIp(10, 0, 0, 0), 24, 0, "eth1", 0}).code(), Errno::kEEXIST);
  EXPECT_EQ(rt.Remove(MakeIp(10, 0, 0, 0), 16).code(), Errno::kESRCH);
  EXPECT_TRUE(rt.Remove(MakeIp(10, 0, 0, 0), 24).ok());
}

TEST(RoutingTest, ParseHelpers) {
  EXPECT_EQ(ParseIpv4("10.0.0.2"), MakeIp(10, 0, 0, 2));
  EXPECT_FALSE(ParseIpv4("10.0.0").has_value());
  EXPECT_FALSE(ParseIpv4("10.0.0.256").has_value());
  auto dst = ParseDstSpec("172.16.0.0/16");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.value().second, 16);
  EXPECT_EQ(ParseDstSpec("1.2.3.4").value().second, 32);
  EXPECT_EQ(ParseDstSpec("1.2.3.4/33").code(), Errno::kEINVAL);
  auto route = ParseRouteSpec("10.9.0.0/16 10.0.0.1 ppp0");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().dev, "ppp0");
  EXPECT_EQ(ParseRouteSpec("10.9.0.0/16 ppp0").code(), Errno::kEINVAL);
}

TEST(NetworkTest, BindConflictsAndPortOwner) {
  Network net;
  Socket& a = net.CreateSocket(kAfInet, kSockStream, 0, 1000, "/a");
  Socket& b = net.CreateSocket(kAfInet, kSockStream, 0, 1001, "/b");
  Socket& u = net.CreateSocket(kAfInet, kSockDgram, 0, 1002, "/u");
  ASSERT_TRUE(net.Bind(a, 80).ok());
  EXPECT_EQ(net.Bind(b, 80).code(), Errno::kEADDRINUSE);
  // Different protocol, same number: fine.
  EXPECT_TRUE(net.Bind(u, 80).ok());
  EXPECT_EQ(net.PortOwner(kProtoTcp, 80), 1000u);
  EXPECT_EQ(net.PortOwner(kProtoUdp, 80), 1002u);
  EXPECT_FALSE(net.PortOwner(kProtoTcp, 81).has_value());
  // Closing releases the port.
  net.DestroySocket(a.id);
  EXPECT_FALSE(net.PortOwner(kProtoTcp, 80).has_value());
}

TEST(NetworkTest, RefcountKeepsSharedSocketsAlive) {
  Network net;
  Socket& s = net.CreateSocket(kAfInet, kSockDgram, 0, 1000, "/x");
  int id = s.id;
  net.RefSocket(id);
  net.DestroySocket(id);
  EXPECT_NE(net.FindSocket(id), nullptr);  // one ref remains
  net.DestroySocket(id);
  EXPECT_EQ(net.FindSocket(id), nullptr);
}

TEST(NetworkTest, LocalDeliveryToBoundSocket) {
  Network net;
  Socket& server = net.CreateSocket(kAfInet, kSockDgram, 0, 1000, "/srv");
  ASSERT_TRUE(net.Bind(server, 9999).ok());
  Socket& client = net.CreateSocket(kAfInet, kSockDgram, 0, 1001, "/cli");
  Packet p = UdpPacket(kLocalhostIp, 9999);
  p.payload = "hi";
  ASSERT_TRUE(net.Send(client, p).ok());
  auto got = net.Receive(server);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, "hi");
  EXPECT_EQ(got->sender_uid, 1001u);
  EXPECT_FALSE(net.Receive(server).has_value());
}

TEST(NetworkTest, RemoteHostBehaviour) {
  Network net;
  RemoteHost host;
  host.ip = MakeIp(10, 0, 0, 2);
  host.hops_away = 3;
  host.udp_echo = {7};
  net.AddRemoteHost(host);
  ASSERT_TRUE(net.routes().Add({MakeIp(10, 0, 0, 0), 24, 0, "eth0", 0}).ok());

  Socket& raw = net.CreateSocket(kAfInet, kSockRaw, kProtoIcmp, 1000, "/ping");
  // Echo round trip.
  Packet echo;
  echo.l4_proto = kProtoIcmp;
  echo.icmp_type = kIcmpEchoRequest;
  echo.dst_ip = host.ip;
  ASSERT_TRUE(net.Send(raw, echo).ok());
  auto reply = net.Receive(raw);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->icmp_type, kIcmpEchoReply);
  // TTL expiry en route (hops_away=3, ttl=1).
  Socket& udp_raw = net.CreateSocket(kAfInet, kSockRaw, kProtoUdp, 1000, "/tr");
  Packet probe = UdpPacket(host.ip, 33435);
  probe.ttl = 1;
  probe.from_raw_socket = true;
  ASSERT_TRUE(net.Send(udp_raw, probe).ok());
  // Remote replies are queued on the sending socket (how traceroute's raw
  // socket sees the ICMP error for its own probe).
  auto exceeded = net.Receive(udp_raw);
  ASSERT_TRUE(exceeded.has_value());
  EXPECT_EQ(exceeded->icmp_type, kIcmpTimeExceeded);
  // Unroutable destination.
  Packet nowhere = UdpPacket(MakeIp(203, 0, 113, 5), 9);
  EXPECT_EQ(net.Send(raw, nowhere).code(), Errno::kENETUNREACH);
}

TEST(NetworkTest, ConnectSemantics) {
  Network net;
  RemoteHost web;
  web.ip = MakeIp(93, 184, 216, 34);
  web.tcp_listening = {80};
  net.AddRemoteHost(web);
  ASSERT_TRUE(net.routes().Add({MakeIp(93, 184, 216, 0), 24, 0, "eth0", 0}).ok());

  Socket& sock = net.CreateSocket(kAfInet, kSockStream, 0, 1000, "/c");
  EXPECT_TRUE(net.Connect(sock, web.ip, 80).ok());
  EXPECT_TRUE(sock.connected);
  Socket& sock2 = net.CreateSocket(kAfInet, kSockStream, 0, 1000, "/c");
  EXPECT_EQ(net.Connect(sock2, web.ip, 81).code(), Errno::kECONNREFUSED);
  EXPECT_EQ(net.Connect(sock2, MakeIp(93, 184, 217, 1), 80).code(), Errno::kENETUNREACH);
  // Local connect requires a listener.
  EXPECT_EQ(net.Connect(sock2, kLocalhostIp, 8080).code(), Errno::kECONNREFUSED);
  Socket& listener = net.CreateSocket(kAfInet, kSockStream, 0, 1000, "/l");
  ASSERT_TRUE(net.Bind(listener, 8080).ok());
  ASSERT_TRUE(net.Listen(listener).ok());
  EXPECT_TRUE(net.Connect(sock2, kLocalhostIp, 8080).ok());
}

TEST(PppChannelTest, UnitsAllocateSequentially) {
  Network net;
  EXPECT_EQ(net.NewPppUnit().unit, 0);
  EXPECT_EQ(net.NewPppUnit().unit, 1);
  EXPECT_NE(net.FindPppUnit(0), nullptr);
  EXPECT_EQ(net.FindPppUnit(7), nullptr);
  EXPECT_EQ(net.FindPppUnit(-1), nullptr);
}

}  // namespace
}  // namespace protego
