// Unit tests for the kernel syscall layer: permission enforcement, setuid
// execve semantics, capability recomputation, fd behaviour.

#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"

namespace protego {
namespace {

// A bare kernel with commoncap only (no MAC) and a couple of files.
class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    kernel_.lsm().Register(std::make_unique<CapabilityModule>());
    (void)kernel_.vfs().EnsureDirs("/etc");
    (void)kernel_.vfs().EnsureDirs("/tmp");
    kernel_.vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
    (void)kernel_.vfs().CreateFile("/etc/secret", 0600, kRootUid, kRootGid, "top");
    (void)kernel_.vfs().CreateFile("/etc/public", 0644, kRootUid, kRootGid, "open");
  }

  Task& User(Uid uid) { return kernel_.CreateTask("u", Cred::ForUser(uid, uid), &terminal_); }
  Task& Root() { return kernel_.CreateTask("root", Cred::Root(), &terminal_); }

  Kernel kernel_;
  Terminal terminal_;
};

TEST_F(KernelTest, DacEnforcedOnOpen) {
  Task& alice = User(1000);
  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEACCES);
  EXPECT_TRUE(kernel_.Open(alice, "/etc/public", kORdOnly).ok());
  EXPECT_EQ(kernel_.Open(alice, "/etc/public", kOWrOnly).code(), Errno::kEACCES);
  // Root overrides via CAP_DAC_OVERRIDE.
  Task& root = Root();
  EXPECT_TRUE(kernel_.Open(root, "/etc/secret", kORdWr).ok());
}

TEST_F(KernelTest, OpenCreateRequiresParentWrite) {
  Task& alice = User(1000);
  EXPECT_EQ(kernel_.Open(alice, "/etc/new", kOWrOnly | kOCreat).code(), Errno::kEACCES);
  auto fd = kernel_.Open(alice, "/tmp/mine", kOWrOnly | kOCreat, 0640);
  ASSERT_TRUE(fd.ok());
  auto st = kernel_.Stat(alice, "/tmp/mine");
  EXPECT_EQ(st.value().uid, 1000u);
  EXPECT_EQ(st.value().mode & kPermMask, 0640u);
  // O_EXCL on existing file.
  EXPECT_EQ(kernel_.Open(alice, "/tmp/mine", kOWrOnly | kOCreat | kOExcl).code(),
            Errno::kEEXIST);
}

TEST_F(KernelTest, ReadWriteOffsetsAndTrunc) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "/tmp/f", "hello").ok());
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "/tmp/f", " more", /*append=*/true).ok());
  EXPECT_EQ(kernel_.ReadWholeFile(alice, "/tmp/f").value(), "hello more");
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "/tmp/f", "new").ok());  // O_TRUNC path
  EXPECT_EQ(kernel_.ReadWholeFile(alice, "/tmp/f").value(), "new");
  // Sequential reads consume; a second Read returns empty.
  auto fd = kernel_.Open(alice, "/tmp/f", kORdOnly);
  EXPECT_EQ(kernel_.Read(alice, fd.value()).value(), "new");
  EXPECT_EQ(kernel_.Read(alice, fd.value()).value(), "");
  EXPECT_EQ(kernel_.Read(alice, 999).code(), Errno::kEBADF);
}

TEST_F(KernelTest, ChmodChownRules) {
  Task& alice = User(1000);
  Task& bob = User(1001);
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "/tmp/owned", "x").ok());
  EXPECT_TRUE(kernel_.Chmod(alice, "/tmp/owned", 0600).ok());
  EXPECT_EQ(kernel_.Chmod(bob, "/tmp/owned", 0666).code(), Errno::kEPERM);
  EXPECT_EQ(kernel_.Chown(alice, "/tmp/owned", 1001, 1001).code(), Errno::kEPERM);
  Task& root = Root();
  EXPECT_TRUE(kernel_.Chown(root, "/tmp/owned", 1001, 1001).ok());
  EXPECT_EQ(kernel_.Stat(root, "/tmp/owned").value().uid, 1001u);
}

TEST_F(KernelTest, ChownClearsSetuidBit) {
  Task& root = Root();
  ASSERT_TRUE(kernel_.WriteWholeFile(root, "/tmp/suid", "x").ok());
  ASSERT_TRUE(kernel_.Chmod(root, "/tmp/suid", 04755).ok());
  EXPECT_TRUE((kernel_.Stat(root, "/tmp/suid").value().mode & kSetUidBit) != 0);
  ASSERT_TRUE(kernel_.Chown(root, "/tmp/suid", 1000, 1000).ok());
  EXPECT_TRUE((kernel_.Stat(root, "/tmp/suid").value().mode & kSetUidBit) == 0);
}

TEST_F(KernelTest, SetuidBitExecSemantics) {
  // A setuid-root probe binary reports the credentials it runs with.
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/probe", 04755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) {
                                   const Cred& c = ctx.task.cred;
                                   ctx.Out(StrFormat("ruid=%u euid=%u suid=%u caps=%d\n",
                                                     c.ruid, c.euid, c.suid,
                                                     c.effective.Has(Capability::kSysAdmin)));
                                   return 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.Spawn(alice, "/bin/probe", {"probe"}, {}).ok());
  // The setuid bit changed euid+suid, not ruid; euid 0 granted full caps.
  EXPECT_EQ(alice.stdout_buf, "ruid=1000 euid=0 suid=0 caps=1\n");
  // The parent's own credentials never changed.
  EXPECT_EQ(alice.cred.euid, 1000u);
}

TEST_F(KernelTest, NonSetuidExecKeepsCallerCreds) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/plain", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) {
                                   ctx.Out(StrFormat("euid=%u", ctx.task.cred.euid));
                                   return 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.Spawn(alice, "/bin/plain", {"plain"}, {}).ok());
  EXPECT_EQ(alice.stdout_buf, "euid=1000");
}

TEST_F(KernelTest, ExecRequiresExecuteBitAndRegistration) {
  Task& alice = User(1000);
  (void)kernel_.vfs().CreateFile("/tmp/script", 0644, 1000, 1000, "data");
  EXPECT_EQ(kernel_.Spawn(alice, "/tmp/script", {"script"}, {}).code(), Errno::kEACCES);
  (void)kernel_.vfs().CreateFile("/tmp/unregistered", 0755, 1000, 1000, "x");
  EXPECT_EQ(kernel_.Spawn(alice, "/tmp/unregistered", {"u"}, {}).code(), Errno::kENOEXEC);
  EXPECT_EQ(kernel_.Spawn(alice, "/no/such", {"x"}, {}).code(), Errno::kENOENT);
}

TEST_F(KernelTest, SetuidDropsCapsFromRoot) {
  Task& root = Root();
  ASSERT_TRUE(kernel_.Setuid(root, 1000).ok());
  EXPECT_EQ(root.cred.ruid, 1000u);
  EXPECT_EQ(root.cred.euid, 1000u);
  EXPECT_EQ(root.cred.suid, 1000u);
  EXPECT_TRUE(root.cred.effective.Empty());
  EXPECT_TRUE(root.cred.permitted.Empty());
  // Once fully dropped, there is no way back.
  EXPECT_EQ(kernel_.Setuid(root, 0).code(), Errno::kEPERM);
}

TEST_F(KernelTest, SeteuidCanReturnToSavedUid) {
  // A setuid binary that dropped only its effective uid can regain it
  // through the saved uid (the classic temporary-drop pattern).
  Task& task = kernel_.CreateTask("t", Cred::ForUser(1000, 1000), nullptr);
  task.cred.euid = 0;
  task.cred.suid = 0;
  task.cred.effective = CapSet::All();
  task.cred.permitted = CapSet::All();
  ASSERT_TRUE(kernel_.Seteuid(task, 1000).ok());
  EXPECT_EQ(task.cred.euid, 1000u);
  EXPECT_TRUE(task.cred.effective.Empty());
  ASSERT_TRUE(kernel_.Seteuid(task, 0).ok());  // suid still 0
  EXPECT_EQ(task.cred.euid, 0u);
  EXPECT_EQ(task.cred.effective.bits(), task.cred.permitted.bits());
}

TEST_F(KernelTest, SetuidUnprivilegedRules) {
  Task& alice = User(1000);
  EXPECT_EQ(kernel_.Setuid(alice, 1001).code(), Errno::kEPERM);
  EXPECT_TRUE(kernel_.Setuid(alice, 1000).ok());  // to own uid is legal
  EXPECT_EQ(kernel_.Setgid(alice, 50).code(), Errno::kEPERM);
  EXPECT_TRUE(kernel_.Setgid(alice, 1000).ok());
  EXPECT_EQ(kernel_.Setgroups(alice, {1, 2}).code(), Errno::kEPERM);
}

TEST_F(KernelTest, CloexecFdsDropAtExec) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/fdcount", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) {
                                   ctx.Out(StrFormat("%zu", ctx.task.fds.size()));
                                   return 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.Open(alice, "/etc/public", kORdOnly).ok());
  ASSERT_TRUE(kernel_.Open(alice, "/etc/public", kORdOnly | kOCloExec).ok());
  ASSERT_TRUE(kernel_.Spawn(alice, "/bin/fdcount", {"fdcount"}, {}).ok());
  EXPECT_EQ(alice.stdout_buf, "1");  // the cloexec fd vanished in the child
  EXPECT_EQ(alice.fds.size(), 2u);   // the parent keeps both
}

TEST_F(KernelTest, MkdirUnlinkRenamePermissions) {
  Task& alice = User(1000);
  EXPECT_EQ(kernel_.Mkdir(alice, "/etc/x", 0755).code(), Errno::kEACCES);
  EXPECT_TRUE(kernel_.Mkdir(alice, "/tmp/dir", 0755).ok());
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "/tmp/dir/f", "x").ok());
  EXPECT_EQ(kernel_.Rename(alice, "/tmp/dir/f", "/etc/f").code(), Errno::kEACCES);
  EXPECT_TRUE(kernel_.Rename(alice, "/tmp/dir/f", "/tmp/g").ok());
  EXPECT_EQ(kernel_.Unlink(alice, "/etc/public").code(), Errno::kEACCES);
  EXPECT_TRUE(kernel_.Unlink(alice, "/tmp/g").ok());
}

TEST_F(KernelTest, ReadDirListsSorted) {
  Task& root = Root();
  (void)kernel_.WriteWholeFile(root, "/tmp/b", "");
  (void)kernel_.WriteWholeFile(root, "/tmp/a", "");
  auto names = kernel_.ReadDir(root, "/tmp");
  ASSERT_TRUE(names.ok());
  ASSERT_GE(names.value().size(), 2u);
  EXPECT_EQ(names.value()[0], "a");
  EXPECT_EQ(kernel_.ReadDir(root, "/tmp/a").code(), Errno::kENOTDIR);
}

TEST_F(KernelTest, RelativePathsResolveAgainstCwd) {
  Task& alice = User(1000);
  alice.cwd = "/tmp";
  ASSERT_TRUE(kernel_.WriteWholeFile(alice, "rel.txt", "here").ok());
  EXPECT_EQ(kernel_.ReadWholeFile(alice, "/tmp/rel.txt").value(), "here");
  EXPECT_EQ(kernel_.ReadWholeFile(alice, "./rel.txt").value(), "here");
}

TEST_F(KernelTest, SpawnPropagatesExitCodeAndOutput) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/fail7", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) {
                                   ctx.Err("boom\n");
                                   return 7;
                                 })
                  .ok());
  Task& alice = User(1000);
  auto code = kernel_.Spawn(alice, "/bin/fail7", {"fail7"}, {});
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 7);
  EXPECT_EQ(alice.stderr_buf, "boom\n");
}

}  // namespace
}  // namespace protego
