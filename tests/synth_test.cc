// Tests for the trace-driven policy synthesizer (src/synth): determinism
// across repetitions and exec modes, minimality of the synthesized filters,
// rejection of held-out (never-observed) probes, closed-loop functional
// equivalence and CVE containment via the gating study, and Prometheus
// exposition-format lint of the synth + seccomp metric families.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/base/metrics.h"
#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/sudoers.h"
#include "src/study/synth_study.h"
#include "tests/prometheus_lint.h"

namespace protego::synth {
namespace {

constexpr uint64_t kSeed = 42;

// Synthesis walks the full workload under tracing, so share one policy
// across the cheap assertions below (the study test re-synthesizes on its
// own to prove determinism).
const SynthesizedPolicy& CachedPolicy() {
  static const SynthesizedPolicy* policy =
      new SynthesizedPolicy(SynthesizePolicy(kSeed, ExecMode::kDeterministic));
  return *policy;
}

TEST(SynthTest, StudyGatesGreen) {
  SynthStudyResult result = RunSynthStudy(kSeed);
  EXPECT_TRUE(result.determinism_ok);
  EXPECT_TRUE(result.functional_ok) << result.report;
  for (const std::string& name : result.functional_mismatches) {
    ADD_FAILURE() << "functional mismatch under synthesized policy: " << name;
  }
  EXPECT_TRUE(result.cves_contained);
  EXPECT_EQ(result.cve_escalated, 0);
  EXPECT_GE(result.cve_total, 40);
  EXPECT_TRUE(result.ok());
}

TEST(SynthTest, PolicyTextIsInstallableAndByteStable) {
  const SynthesizedPolicy& policy = CachedPolicy();
  // Every synthesized table must re-parse through the installable-config
  // grammar — a policy the proc interface would reject is useless.
  EXPECT_TRUE(ParseFstab(policy.mounts_text).ok());
  EXPECT_TRUE(ParseBindConf(policy.ports_text).ok());
  EXPECT_TRUE(ParseSudoers(policy.sudoers_text).ok());
  for (const UtilityFilter& f : policy.filters) {
    auto spec = SeccompFilter::ParseSpec(f.text);
    ASSERT_TRUE(spec.ok()) << f.exe;
    auto filter = SeccompFilter::FromSpec(spec.value());
    ASSERT_TRUE(filter.ok()) << f.exe;
    // Render is a fixed point: parse(render(x)) renders identically.
    EXPECT_EQ(filter.value().Render(), f.text) << f.exe;
  }
}

TEST(SynthTest, FiltersAreMinimalNotBlanket) {
  const SynthesizedPolicy& policy = CachedPolicy();
  ASSERT_FALSE(policy.filters.empty());
  for (const UtilityFilter& f : policy.filters) {
    auto filter = SeccompFilter::FromSpec(f.spec);
    ASSERT_TRUE(filter.ok()) << f.exe;
    // A trace-derived allow-list is a small fraction of the syscall table.
    EXPECT_LE(filter.value().allowed_count(), 24u) << f.exe;
    EXPECT_GE(filter.value().allowed_count(), 1u) << f.exe;
  }
  // The interesting utilities carry argument rules, not just number sets.
  for (const char* exe : {"/usr/bin/passwd", "/bin/su", "/usr/sbin/httpd"}) {
    const UtilityFilter* f = policy.FilterFor(exe);
    ASSERT_NE(f, nullptr) << exe;
    auto filter = SeccompFilter::FromSpec(f->spec);
    ASSERT_TRUE(filter.ok());
    EXPECT_TRUE(filter.value().has_any_rules()) << exe;
  }
}

TEST(SynthTest, HeldOutProbesAreRejected) {
  const SynthesizedPolicy& policy = CachedPolicy();

  // passwd never opened /etc/sudoers: the path predicate must refuse it
  // even though open(2) itself is on the allow list.
  {
    const UtilityFilter* f = policy.FilterFor("/usr/bin/passwd");
    ASSERT_NE(f, nullptr);
    auto filter = SeccompFilter::FromSpec(f->spec);
    ASSERT_TRUE(filter.ok());
    EXPECT_TRUE(filter.value().Allows(Sysno::kOpen));
    SyscallArgs args;
    const std::string held_out = "/etc/sudoers";
    args.path = &held_out;
    args.a[1] = static_cast<uint64_t>(kORdOnly);
    uint32_t evals = 0;
    EXPECT_FALSE(filter.value().AllowsArgs(Sysno::kOpen, args, &evals));
    EXPECT_GT(evals, 0u);
  }

  // httpd only ever bound port 80: a held-out privileged port is refused.
  {
    const UtilityFilter* f = policy.FilterFor("/usr/sbin/httpd");
    ASSERT_NE(f, nullptr);
    auto filter = SeccompFilter::FromSpec(f->spec);
    ASSERT_TRUE(filter.ok());
    SyscallArgs args;
    args.a[0] = 3;
    args.a[1] = 443;
    uint32_t evals = 0;
    EXPECT_FALSE(filter.value().AllowsArgs(Sysno::kBind, args, &evals));
    args.a[1] = 80;
    EXPECT_TRUE(filter.value().AllowsArgs(Sysno::kBind, args, &evals));
  }

  // su only ever transitioned to uids seen in the workload: setuid(4242)
  // fails the argument predicate.
  {
    const UtilityFilter* f = policy.FilterFor("/bin/su");
    ASSERT_NE(f, nullptr);
    auto filter = SeccompFilter::FromSpec(f->spec);
    ASSERT_TRUE(filter.ok());
    SyscallArgs args;
    args.a[0] = 4242;
    uint32_t evals = 0;
    EXPECT_FALSE(filter.value().AllowsArgs(Sysno::kSetuid, args, &evals));
  }
}

TEST(SynthTest, SynthesizedTablesMatchStockSemantics) {
  const SynthesizedPolicy& policy = CachedPolicy();
  // The traced workload exercises both user-mountable fstab entries; the
  // synthesized rows must carry the options the LSM needs to re-grant them
  // (a row without user/users grants nothing to non-root).
  ASSERT_EQ(policy.mounts.size(), 2u);
  for (const FstabEntry& entry : policy.mounts) {
    EXPECT_TRUE(entry.UserMountable()) << entry.mountpoint;
  }
  // Privileged-port table: both daemons, correct target uids.
  std::set<std::pair<uint16_t, std::string>> ports;
  for (const BindConfEntry& e : policy.ports) {
    ports.insert({e.port, e.binary});
  }
  EXPECT_TRUE(ports.count({25, "/usr/sbin/eximd"}));
  EXPECT_TRUE(ports.count({80, "/usr/sbin/httpd"}));
  // Sudoers: the deferred (command-restricted) grants survive synthesis with
  // their auth semantics intact.
  bool bob_lpr = false, charlie_id = false;
  for (const SudoRule& rule : policy.sudoers.rules) {
    if (rule.user == "bob" && rule.RunasMatches("alice") && !rule.nopasswd) {
      bob_lpr = true;
    }
    if (rule.user == "charlie" && rule.RunasMatches("root") && rule.nopasswd) {
      charlie_id = true;
    }
  }
  EXPECT_TRUE(bob_lpr);
  EXPECT_TRUE(charlie_id);
}

TEST(SynthTest, MetricsFamiliesLintClean) {
  GlobalSynthStats().Reset();
  (void)CachedPolicy();  // ensure at least one synthesis pass is counted
  SynthesizedPolicy policy = SynthesizePolicy(kSeed, ExecMode::kDeterministic);
  MetricsRegistry registry;
  registry.AddCollector([](MetricsBuilder& b) { GlobalSynthStats().CollectMetrics(b); });
  std::string text = registry.PrometheusText();
  auto lint = prom::LintPrometheusText(text);
  EXPECT_FALSE(lint.has_value()) << *lint;
  EXPECT_NE(text.find("protego_synth_runs_total"), std::string::npos);
  EXPECT_NE(text.find("protego_synth_filters_total"), std::string::npos);
  EXPECT_NE(text.find("protego_synth_policy_rows_total"), std::string::npos);

  // The rule-eval counter crosses the kernel metrics surface once a
  // predicate filter actually evaluates rules: install the synthesized
  // policy and run one traced scenario, then lint the kernel exposition.
  SimSystem sys(SimMode::kProtego);
  ASSERT_TRUE(InstallSynthesized(sys, policy).ok());
  const std::vector<FunctionalScenario>& workload = SynthWorkload();
  ASSERT_FALSE(workload.empty());
  (void)workload.front().run(sys);
  std::string kernel_text = sys.kernel().metrics().PrometheusText();
  auto kernel_lint = prom::LintPrometheusText(kernel_text);
  EXPECT_FALSE(kernel_lint.has_value()) << *kernel_lint;
  EXPECT_NE(kernel_text.find("protego_seccomp_rule_evals_total"), std::string::npos);
}

}  // namespace
}  // namespace protego::synth
