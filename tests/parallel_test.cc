// ExecMode::kParallel acceptance tests: real OS threads entering one kernel
// concurrently. The assertions here are deliberately schedule-independent
// (leak freedom, accounting balance, policy-swap coherence) — built with
// -fsanitize=thread this file doubles as the data-race audit of the sharded
// kernel state, and the CI gating job runs it exactly that way.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/conc/explore.h"
#include "src/conc/fleet.h"
#include "src/conc/thread_sched.h"
#include "src/fault/fault.h"
#include "src/kernel/exec_mode.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"
#include "src/sim/system.h"
#include "src/study/races.h"

namespace protego {
namespace {

using conc::RunParallel;
using conc::ThreadScheduler;

std::unique_ptr<Kernel> BootBareKernel() {
  auto kernel = std::make_unique<Kernel>();
  kernel->lsm().Register(std::make_unique<CapabilityModule>());
  (void)kernel->vfs().EnsureDirs("/tmp");
  kernel->vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
  return kernel;
}

// --- Execution mode selection ------------------------------------------------

TEST(ExecModeTest, EnvSelectsParallelElseDeterministic) {
  ::unsetenv("PROTEGO_EXEC_MODE");
  EXPECT_EQ(ExecModeFromEnv(), ExecMode::kDeterministic);
  ::setenv("PROTEGO_EXEC_MODE", "", 1);
  EXPECT_EQ(ExecModeFromEnv(), ExecMode::kDeterministic);
  ::setenv("PROTEGO_EXEC_MODE", "deterministic", 1);
  EXPECT_EQ(ExecModeFromEnv(), ExecMode::kDeterministic);
  ::setenv("PROTEGO_EXEC_MODE", "parallel", 1);
  EXPECT_EQ(ExecModeFromEnv(), ExecMode::kParallel);
  ::unsetenv("PROTEGO_EXEC_MODE");
  EXPECT_STREQ(ExecModeName(ExecMode::kParallel), "parallel");
}

// Regression: a typo such as "parallell" used to silently fall back to the
// deterministic driver, green-lighting the wrong mode in CI. Unknown values
// must abort with the offending string.
TEST(ExecModeDeathTest, UnknownValueAbortsLoudly) {
  EXPECT_DEATH(
      {
        ::setenv("PROTEGO_EXEC_MODE", "parallell", 1);
        (void)ExecModeFromEnv();
      },
      "unrecognized PROTEGO_EXEC_MODE value \"parallell\"");
  ::unsetenv("PROTEGO_EXEC_MODE");
}

// --- ThreadScheduler semantics ----------------------------------------------

TEST(ThreadSchedulerTest, SignalWakesWaiterAndTimeoutRetries) {
  ThreadScheduler sched;
  std::atomic<bool> flag{false};
  std::atomic<int> loops{0};
  sched.StartTask(1, [&] {
    // The kernel's wait idiom: loop, re-check the predicate, WaitOn.
    while (!flag.load()) {
      ++loops;
      ASSERT_TRUE(sched.WaitOn(1, /*resource=*/42));
    }
  });
  sched.StartTask(2, [&] {
    flag.store(true);
    sched.Signal(42);
  });
  sched.Join();
  EXPECT_TRUE(flag.load());
  EXPECT_EQ(sched.started(), 2u);
  // WaitOn on a never-signalled resource still returns (timeout retry).
  sched.StartTask(3, [&] { ASSERT_TRUE(sched.WaitOn(3, 99)); });
  sched.Join();
}

// --- Satellite: multi-thread open/close/unlink/symlink stress ---------------
//
// Eight threads hammer a shared kernel: private files (open/write/close),
// a shared file that one thread keeps unlinking and recreating while others
// hold it open (orphan churn), and symlink create/unlink. Afterwards the
// kernel must show zero leaked fds, a balanced VFS block audit, and a
// quiescent-stable orphan list.
TEST(ParallelStress, OpenCloseUnlinkSymlinkLeakFree) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::unique_ptr<Kernel> kernel = BootBareKernel();
  Kernel& k = *kernel;
  (void)k.vfs().CreateFile("/tmp/shared", 0666, kRootUid, kRootGid, "seed");
  const uint64_t fds_before = k.OpenFileCount();

  ThreadScheduler sched;
  k.set_scheduler(&sched);
  std::vector<Task*> tasks;
  for (int t = 0; t < kThreads; ++t) {
    tasks.push_back(&k.CreateTask("stress" + std::to_string(t),
                                  Cred::ForUser(1000 + t, 1000 + t), nullptr));
  }
  for (int t = 0; t < kThreads; ++t) {
    Task* task = tasks[static_cast<size_t>(t)];
    sched.StartTask(task->pid, [&k, task, t] {
      const std::string mine = "/tmp/own" + std::to_string(t);
      const std::string link = "/tmp/lnk" + std::to_string(t);
      for (int r = 0; r < kRounds; ++r) {
        auto fd = k.Open(*task, mine, kOWrOnly | kOCreat, 0644);
        if (fd.ok()) {
          (void)k.Write(*task, fd.value(), "x");
          (void)k.Close(*task, fd.value());
        }
        auto sh = k.Open(*task, "/tmp/shared", kORdOnly);
        if (sh.ok()) {
          (void)k.Read(*task, sh.value());
          (void)k.Close(*task, sh.value());
        }
        if (t == 0) {
          // Unlink-while-open: readers holding /tmp/shared push it onto
          // the orphan list; the recreate races their next open.
          (void)k.Unlink(*task, "/tmp/shared");
          auto re = k.Open(*task, "/tmp/shared", kOWrOnly | kOCreat, 0666);
          if (re.ok()) {
            (void)k.Close(*task, re.value());
          }
        } else {
          (void)k.Symlink(*task, mine, link);
          (void)k.Stat(*task, link);
          (void)k.Unlink(*task, link);
        }
      }
    });
  }
  sched.Join();
  k.set_scheduler(nullptr);

  // fd-leak freedom: every path above closes what it opens, so the
  // system-wide open-file count must be exactly back at baseline.
  EXPECT_EQ(k.OpenFileCount(), fds_before);
  for (Task* task : tasks) {
    EXPECT_EQ(task->fds.size(), 0u) << "leaked fds in task " << task->pid;
  }
  // VFS accounting balances and the orphan list is quiescent-stable.
  auto audit = k.vfs().AuditBlockAccounting();
  EXPECT_TRUE(audit.ok()) << audit.error().ToString();
  const size_t orphans = k.vfs().orphan_count();
  auto audit2 = k.vfs().AuditBlockAccounting();
  EXPECT_TRUE(audit2.ok());
  EXPECT_EQ(k.vfs().orphan_count(), orphans);
}

// --- Satellite: fault injection under parallel load --------------------------
//
// The PR 5 degradation contract re-checked with real threads: probabilistic
// EIO at the fd-allocation site while four threads run open/close loops.
// Failed opens must not leak fds or unbalance the VFS audit.
TEST(ParallelStress, FaultInjectionLeakFreeUnderThreads) {
  std::unique_ptr<Kernel> kernel = BootBareKernel();
  Kernel& k = *kernel;
  (void)k.vfs().CreateFile("/tmp/victim", 0666, kRootUid, kRootGid, "data");
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.error = Errno::kEIO;
  cfg.prob_num = 1;
  cfg.prob_den = 3;
  cfg.seed = 7;
  ASSERT_TRUE(k.faults().Configure(FaultSite::kFdAlloc, cfg).ok());

  ThreadScheduler sched;
  k.set_scheduler(&sched);
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < 4; ++t) {
    Task& task = k.CreateTask("fault" + std::to_string(t),
                              Cred::ForUser(2000 + t, 2000 + t), nullptr);
    sched.StartTask(task.pid, [&k, &task, &failures] {
      for (int r = 0; r < 300; ++r) {
        auto fd = k.Open(task, "/tmp/victim", kORdOnly);
        if (fd.ok()) {
          (void)k.Close(task, fd.value());
        } else {
          EXPECT_EQ(fd.code(), Errno::kEIO);
          ++failures;
        }
      }
    });
  }
  sched.Join();
  k.set_scheduler(nullptr);
  EXPECT_GT(k.faults().injected(FaultSite::kFdAlloc), 0u);
  EXPECT_GT(failures.load(), 0u);
  EXPECT_EQ(k.OpenFileCount(), 0u);
  EXPECT_TRUE(k.vfs().AuditBlockAccounting().ok());
}

// --- Race corpus re-run with real threads ------------------------------------

TEST(ParallelRaceCorpus, ProtegoTocttouCleanUnderRealThreads) {
  for (TocttouVariant variant :
       {TocttouVariant::kStatThenOpen, TocttouVariant::kAccessThenOpen}) {
    auto res = RunParallel(MakeTocttouScenario(SimMode::kProtego, variant), 10);
    EXPECT_FALSE(res.violation_found)
        << TocttouVariantName(variant) << ": " << res.detail;
    EXPECT_EQ(res.runs, 10u);
  }
}

TEST(ParallelRaceCorpus, StockLinuxTocttouRunsToCompletion) {
  // No violation assertion: with OS scheduling the swap may or may not land
  // in the window. The value is TSan coverage of the racy victim/attacker
  // paths against the sharded kernel.
  auto res = RunParallel(MakeTocttouScenario(SimMode::kLinux,
                                             TocttouVariant::kStatThenOpen), 3);
  EXPECT_GE(res.runs, 1u);
}

TEST(ParallelRaceCorpus, FlockSerializesPasswdRewritersUnderRealThreads) {
  // The flock-protected chfn pair must never lose an update, whatever the
  // OS interleaving; this also exercises ThreadScheduler's WaitOn/Signal
  // path through Kernel::Flock.
  auto res = RunParallel(MakePasswdLostUpdateScenario(/*with_flock=*/true), 5);
  EXPECT_FALSE(res.violation_found) << res.detail;
}

// --- RCU policy reads: swap mid-traffic --------------------------------------

// A policy swap landing while reader threads are mid-lookup must never
// produce a verdict from a half-published policy, and generation bumps must
// invalidate, not relabel, cached verdicts. Readers hammer delegation-free
// syscalls while the writer republishes the mount whitelist.
TEST(ParallelPolicySwap, SwapMidTrafficIsCoherent) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  std::vector<Task*> readers;
  for (int t = 0; t < 4; ++t) {
    readers.push_back(&sys.Login("alice"));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (Task* task : readers) {
    threads.emplace_back([&k, task, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)k.Stat(*task, "/etc/passwd");
        (void)k.Access(*task, "/etc/passwd", kMayRead);
        (void)k.GetPid(*task);
      }
    });
  }
  const uint64_t gen_before = k.lsm().policy_generation();
  for (int swap = 0; swap < 50; ++swap) {
    ASSERT_TRUE(sys.lsm()->SetMountPolicy({}).ok());
  }
  stop.store(true);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GE(k.lsm().policy_generation(), gen_before + 50);
  // Traffic after the last swap behaves identically to a fresh boot.
  Task& probe = sys.Login("alice");
  EXPECT_TRUE(k.Access(probe, "/etc/passwd", kMayRead).ok());
}

// --- Stale-generation regression ---------------------------------------------

// A module that bumps the policy generation from INSIDE its own hook — the
// worst-case "swap lands mid-walk" interleaving, made deterministic. The
// dispatch must tag the cached verdict with the generation snapshotted at
// entry (pre-bump), so the very next identical request MISSES and sees the
// new policy. The historical bug (re-reading the generation at insert time)
// would tag the pre-swap verdict as post-swap and serve it forever.
class MidWalkSwapModule : public SecurityModule {
 public:
  const char* name() const override { return "midwalk-swap"; }
  // Large enough that the small-table cache bypass never engages.
  size_t PolicyRuleCount() const override { return 64; }

  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override {
    (void)task;
    (void)inode;
    (void)may;
    (void)cacheable;
    if (path != "/tmp/swapfile") {
      return HookVerdict::kDefault;
    }
    if (denying_.load()) {
      return HookVerdict::kDeny;
    }
    // First sighting: allow, then "swap the policy" before dispatch returns.
    denying_.store(true);
    BumpPolicyGeneration();
    return HookVerdict::kDefault;
  }

 private:
  std::atomic<bool> denying_{false};
};

TEST(StaleGeneration, MidWalkSwapNeverServesStaleCachedVerdict) {
  std::unique_ptr<Kernel> kernel = BootBareKernel();
  Kernel& k = *kernel;
  k.lsm().Register(std::make_unique<MidWalkSwapModule>());
  (void)k.vfs().CreateFile("/tmp/swapfile", 0666, kRootUid, kRootGid, "s");
  Task& alice = k.CreateTask("alice", Cred::ForUser(1000, 1000), nullptr);

  // First open: module allows, but flips to deny and bumps the generation
  // mid-dispatch. The allow verdict gets cached under the OLD generation.
  auto first = k.Open(alice, "/tmp/swapfile", kORdOnly);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(k.Close(alice, first.value()).ok());

  // Second identical open: a stale-generation cache hit would allow; the
  // correct miss re-dispatches and the new policy denies.
  EXPECT_EQ(k.Open(alice, "/tmp/swapfile", kORdOnly).code(), Errno::kEACCES);
}

// --- Fleet smoke -------------------------------------------------------------

TEST(FleetTest, MultiplexesInstancesOverWorkerPool) {
  conc::FleetOptions opts;
  opts.instances = 40;
  opts.workers = 4;
  opts.ops_per_instance = 24;
  conc::FleetReport report = conc::RunFleet(opts);
  EXPECT_EQ(report.instances_run, 40u);
  // Every instance completes its full mix: 24 ops -> 3 whole rounds of 8.
  EXPECT_EQ(report.total_ops, 40u * 24u);
  EXPECT_GT(report.ops_per_sec, 0.0);
}

// Regression: RunInstance used to issue 8 syscalls per round while
// advancing its loop by 6 and counting 6 — every instance overran its op
// budget by a third and the fleet ops/sec was computed from the undercount.
// total_issued is measured from each instance's gate counters, so it cannot
// lie about what was actually dispatched.
TEST(FleetTest, IssuedMatchesCountedAndRespectsBudget) {
  conc::FleetOptions opts;
  opts.instances = 8;
  opts.workers = 2;
  opts.ops_per_instance = 48;
  conc::FleetReport report = conc::RunFleet(opts);
  EXPECT_EQ(report.instances_run, 8u);
  // Parity: on a healthy run every issued syscall succeeds, so the gate
  // view and the hand count must agree exactly.
  EXPECT_EQ(report.total_issued, report.total_ops);
  // Budget: no instance may dispatch more syscalls than it was asked to.
  EXPECT_LE(report.total_issued, 8u * 48u);
  EXPECT_EQ(report.total_issued, 8u * 48u);  // 48 = 6 whole rounds, no remainder
}

}  // namespace
}  // namespace protego
