// §5.3: Protego must behave equivalently to unmodified Linux — same outputs
// and same effects for every command-line scenario in the suite.

#include <gtest/gtest.h>

#include "src/study/functional.h"

namespace protego {
namespace {

class EquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EquivalenceTest, LinuxAndProtegoTranscriptsMatch) {
  const FunctionalScenario& scenario = FunctionalSuite()[GetParam()];
  SimSystem linux_sys(SimMode::kLinux);
  std::string linux_transcript = NormalizeTranscript(scenario.run(linux_sys));
  SimSystem protego_sys(SimMode::kProtego);
  std::string protego_transcript = NormalizeTranscript(scenario.run(protego_sys));
  EXPECT_EQ(linux_transcript, protego_transcript) << "scenario: " << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, EquivalenceTest,
                         ::testing::Range<size_t>(0, FunctionalSuite().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return FunctionalSuite()[info.param].name;
                         });

}  // namespace
}  // namespace protego
