// Tracepoint subsystem tests: ring wraparound boundaries, decision-span
// integrity across a wrap, per-point enable bits, read-side filters, the
// seccomp-killed trace/stats semantic, and the PR's acceptance criterion —
// a denied mount(2) must be explainable end-to-end from /proc/protego/trace.

#include "src/base/tracepoint.h"

#include "gtest/gtest.h"
#include "src/base/strings.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"
#include "src/net/netfilter.h"
#include "src/protego/proc_iface.h"
#include "src/sim/system.h"

namespace protego {
namespace {

TEST(TracerTest, WraparoundAtExactCapacityAndBeyond) {
  Clock clock;
  Tracer tracer(&clock, 4);

  // Exactly capacity: nothing dropped, seqs 0..3 retained.
  for (int i = 0; i < 4; ++i) {
    tracer.Emit(TracepointId::kCapable, 1);
  }
  EXPECT_EQ(tracer.dropped(), 0u);
  auto snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 0u);
  EXPECT_EQ(snap.back().seq, 3u);

  // Capacity + 1: exactly one dropped, oldest retained seq is 1.
  tracer.Emit(TracepointId::kCapable, 1);
  EXPECT_EQ(tracer.dropped(), 1u);
  snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 1u);
  EXPECT_EQ(snap.back().seq, 4u);

  // Clear resets seq and dropped accounting.
  tracer.Clear();
  EXPECT_EQ(tracer.seq(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.Emit(TracepointId::kCapable, 1);
  EXPECT_EQ(tracer.Snapshot().front().seq, 0u);
}

TEST(TracerTest, SpanTreeSurvivesRingWrap) {
  Clock clock;
  Tracer tracer(&clock, 4);

  uint64_t span = tracer.BeginSpan(7);
  // Six children through a 4-slot ring: only the last three survive
  // alongside the root.
  for (int i = 0; i < 6; ++i) {
    TraceEvent& ev = tracer.Emit(TracepointId::kLsmHook, 7);
    ev.sname = "sb_mount";
    ev.sdetail = "protego";
    ev.svalue = "deny";
  }
  TraceEvent& root = tracer.EmitSpanRoot(TracepointId::kSyscall, 7, span);
  root.sname = "mount";
  root.code = static_cast<int>(Errno::kEPERM);
  tracer.EndSpan(7, span);

  auto snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.back().tp, TracepointId::kSyscall);
  EXPECT_EQ(snap.back().span, span);
  for (size_t i = 0; i + 1 < snap.size(); ++i) {
    EXPECT_EQ(snap[i].tp, TracepointId::kLsmHook);
    EXPECT_EQ(snap[i].span, span);
  }

  // The renderer still builds the tree: root line + indented children,
  // no orphan markers, and the overwritten events show up as dropped.
  std::string text = tracer.Format();
  EXPECT_NE(text.find("mount() = -1 EPERM"), std::string::npos);
  EXPECT_NE(text.find("\n  "), std::string::npos);
  EXPECT_NE(text.find("lsm:sb_mount module=protego -> deny"), std::string::npos);
  EXPECT_EQ(text.find("[orphan"), std::string::npos);
  EXPECT_NE(text.find("# dropped: 3"), std::string::npos);
}

TEST(TracerTest, EventsOfStillOpenSpanRenderAsOrphans) {
  Clock clock;
  Tracer tracer(&clock, 8);
  uint64_t span = tracer.BeginSpan(3);
  TraceEvent& ev = tracer.Emit(TracepointId::kCapable, 3);
  ev.sname = "CAP_SYS_ADMIN";
  // Span never rooted (as when /proc/protego/trace is read from inside the
  // reading syscall's own span): the child renders standalone, marked.
  std::string text = tracer.Format();
  EXPECT_NE(text.find("capable CAP_SYS_ADMIN -> denied"), std::string::npos);
  EXPECT_NE(text.find("[orphan span="), std::string::npos);
  tracer.EndSpan(3, span);
}

TEST(TracerTest, EnableBitsGateEmission) {
  Clock clock;
  Tracer tracer(&clock, 8);
  EXPECT_TRUE(tracer.Enabled(TracepointId::kNetfilter));
  tracer.set_point_enabled(TracepointId::kNetfilter, false);
  EXPECT_FALSE(tracer.Enabled(TracepointId::kNetfilter));
  EXPECT_TRUE(tracer.Enabled(TracepointId::kSyscall));
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.Enabled(TracepointId::kSyscall));
  tracer.set_enabled(true);
  tracer.set_point_enabled(TracepointId::kNetfilter, true);
  EXPECT_TRUE(tracer.Enabled(TracepointId::kNetfilter));
}

TEST(TracerTest, NetfilterEmitsVerdictEvents) {
  Clock clock;
  Tracer tracer(&clock, 16);
  Netfilter nf;
  nf.set_tracer(&tracer);

  NfRule rule;
  rule.chain = NfChain::kOutput;
  rule.match.from_raw_socket = true;
  rule.verdict = NfVerdict::kDrop;
  rule.comment = "drop-raw";
  nf.Append(rule);

  Packet raw;
  raw.from_raw_socket = true;
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, raw), NfVerdict::kDrop);
  Packet plain;
  EXPECT_EQ(nf.Evaluate(NfChain::kOutput, plain), NfVerdict::kAccept);

  std::string text = tracer.Format();
  EXPECT_NE(text.find("netfilter chain=OUTPUT -> DROP rule=\"drop-raw\""), std::string::npos);
  EXPECT_NE(text.find("netfilter chain=OUTPUT -> ACCEPT rule=\"(default policy)\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Gate-level tests on a bare kernel.

class TracepointGateTest : public ::testing::Test {
 protected:
  TracepointGateTest() {
    kernel_.lsm().Register(std::make_unique<CapabilityModule>());
    (void)kernel_.vfs().EnsureDirs("/tmp");
    kernel_.vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
    root_ = &kernel_.CreateTask("sh", Cred::Root(), nullptr, 1);
    alice_ = &kernel_.CreateTask("sh", Cred::ForUser(1000, 1000), nullptr, 1);
  }

  Kernel kernel_;
  Task* root_ = nullptr;
  Task* alice_ = nullptr;
};

TEST_F(TracepointGateTest, GateRingWraparoundBoundaries) {
  kernel_.syscalls().ClearTrace();
  constexpr size_t kCap = SyscallGate::kTraceCapacity;
  for (size_t i = 0; i < kCap; ++i) {
    kernel_.GetPid(*alice_);
  }
  EXPECT_EQ(kernel_.syscalls().trace_dropped(), 0u);
  EXPECT_EQ(kernel_.syscalls().TraceSnapshot().size(), kCap);

  kernel_.GetPid(*alice_);
  EXPECT_EQ(kernel_.syscalls().trace_dropped(), 1u);
  auto snap = kernel_.syscalls().TraceSnapshot();
  ASSERT_EQ(snap.size(), kCap);
  EXPECT_EQ(snap.front().seq, 1u);

  kernel_.syscalls().ClearTrace();
  EXPECT_EQ(kernel_.syscalls().trace_dropped(), 0u);
  EXPECT_TRUE(kernel_.syscalls().TraceSnapshot().empty());
  // Spans keep working after a clear.
  kernel_.GetPid(*alice_);
  snap = kernel_.syscalls().TraceSnapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.front().seq, 0u);
}

TEST_F(TracepointGateTest, SeccompKilledCallsFollowTheDocumentedSemantic) {
  ASSERT_TRUE(kernel_.SeccompSetFilter(*alice_, {Sysno::kGetPid, Sysno::kSeccomp}).ok());
  kernel_.syscalls().ClearTrace();

  kernel_.GetPid(*alice_);
  auto denied = kernel_.SocketCall(*alice_, kAfInet, kSockStream, 0);
  EXPECT_EQ(denied.code(), Errno::kEPERM);

  // Stats: counted in calls, errors, and seccomp_denied...
  const SyscallGate::PerSyscall& s = kernel_.syscalls().stats(Sysno::kSocket);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.seccomp_denied, 1u);
  // ...but EXCLUDED from the latency distribution (the body never ran).
  EXPECT_EQ(s.lat_ticks.count(), s.calls - s.seccomp_denied);
  EXPECT_EQ(s.total_ticks, 0u);

  // Trace: a span root with the seccomp flag and EPERM — stats and trace
  // agree on the count.
  auto snap = kernel_.syscalls().TraceSnapshot();
  size_t traced_denials = 0;
  for (const auto& rec : snap) {
    if (rec.nr == Sysno::kSocket && rec.seccomp_denied) {
      EXPECT_EQ(rec.err, Errno::kEPERM);
      ++traced_denials;
    }
  }
  EXPECT_EQ(traced_denials, s.seccomp_denied);

  // The invariant holds for permitted syscalls too.
  const SyscallGate::PerSyscall& g = kernel_.syscalls().stats(Sysno::kGetPid);
  EXPECT_EQ(g.lat_ticks.count(), g.calls - g.seccomp_denied);
  EXPECT_NE(kernel_.syscalls().FormatTrace().find("(seccomp)"), std::string::npos);
}

TEST_F(TracepointGateTest, CredChangeAndCapableEventsAppearUnderTheSpan) {
  kernel_.syscalls().ClearTrace();
  ASSERT_TRUE(kernel_.Setuid(*root_, 1000).ok());
  std::string text = kernel_.syscalls().FormatTrace();
  EXPECT_NE(text.find("setuid(1000) = 0"), std::string::npos);
  EXPECT_NE(text.find("capable CAP_SETUID -> granted"), std::string::npos);
  EXPECT_NE(text.find("cred:setuid pid="), std::string::npos);
  EXPECT_NE(text.find("uid 0->1000 euid 0->1000"), std::string::npos);
  // The capable + cred events are indented under the setuid root.
  EXPECT_NE(text.find("\n  "), std::string::npos);
}

TEST_F(TracepointGateTest, ReadFiltersSelectPidSyscallAndSpan) {
  kernel_.syscalls().ClearTrace();
  kernel_.GetPid(*alice_);
  kernel_.GetPid(*root_);
  ASSERT_TRUE(kernel_.Open(*root_, "/tmp/f", kOWrOnly | kOCreat).ok());

  Tracer& tracer = kernel_.tracer();

  // pid filter: only alice's getpid remains.
  auto f = ParseTraceQuery(StrFormat("?pid=%d", alice_->pid));
  ASSERT_TRUE(f.ok());
  tracer.set_read_filter(f.value());
  std::string text = kernel_.syscalls().FormatTrace();
  EXPECT_NE(text.find(StrFormat("pid=%d", alice_->pid)), std::string::npos);
  EXPECT_EQ(text.find(StrFormat("pid=%d", root_->pid)), std::string::npos);
  EXPECT_NE(text.find("# filter:"), std::string::npos);

  // syscall filter: only open roots remain.
  f = ParseTraceQuery("?syscall=open");
  ASSERT_TRUE(f.ok());
  tracer.set_read_filter(f.value());
  text = kernel_.syscalls().FormatTrace();
  EXPECT_NE(text.find(" open("), std::string::npos);
  EXPECT_EQ(text.find(" getpid("), std::string::npos);

  // span filter: exactly one tree.
  auto snap = tracer.Snapshot();
  uint64_t open_span = 0;
  for (const auto& ev : snap) {
    if (ev.tp == TracepointId::kSyscall && std::string(ev.sname) == "open") {
      open_span = ev.span;
    }
  }
  ASSERT_NE(open_span, 0u);
  f = ParseTraceQuery(StrFormat("?span=%llu", (unsigned long long)open_span));
  ASSERT_TRUE(f.ok());
  tracer.set_read_filter(f.value());
  text = kernel_.syscalls().FormatTrace();
  EXPECT_NE(text.find(" open("), std::string::npos);
  EXPECT_EQ(text.find(" getpid("), std::string::npos);

  // "?" resets; unfiltered output shows everything again, no trailer.
  f = ParseTraceQuery("?");
  ASSERT_TRUE(f.ok());
  tracer.set_read_filter(f.value());
  text = kernel_.syscalls().FormatTrace();
  EXPECT_NE(text.find(" getpid("), std::string::npos);
  EXPECT_EQ(text.find("# filter:"), std::string::npos);

  // Malformed queries are EINVAL.
  EXPECT_EQ(ParseTraceQuery("?bogus=1").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseTraceQuery("?pid=abc").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseTraceQuery("pid=1").code(), Errno::kEINVAL);
}

// ---------------------------------------------------------------------------
// The acceptance criterion: one denied mount(2), explained end-to-end.

TEST(TracepointSimTest, DeniedMountIsExplainableFromProcTrace) {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();
  // The test asserts cache=miss/cache=hit dispositions; force the cache on
  // despite the small policy tables (the adaptive bypass would skip it).
  kernel.lsm().set_cache_bypass_enabled(false);
  Task& alice = sys.Login("alice");

  kernel.syscalls().ClearTrace();
  auto denied = kernel.Mount(alice, "/dev/sda1", "/mnt", "ext4", {});
  ASSERT_EQ(denied.code(), Errno::kEPERM);

  std::string text = kernel.syscalls().FormatTrace();

  // The span root: the strace-shaped mount record producing the errno.
  size_t root_pos = text.find("mount(\"/dev/sda1\", \"/mnt\", \"ext4\") = -1 EPERM");
  ASSERT_NE(root_pos, std::string::npos) << text;

  // Under it, in order: each LSM module's verdict for sb_mount, then the
  // stack's combined decision with its cache disposition.
  size_t hook_pos = text.find("  ", root_pos);
  ASSERT_NE(hook_pos, std::string::npos);
  size_t module_pos = text.find("lsm:sb_mount module=", root_pos);
  size_t decision_pos = text.find("lsm:sb_mount verdict=", root_pos);
  ASSERT_NE(module_pos, std::string::npos) << text;
  ASSERT_NE(decision_pos, std::string::npos) << text;
  EXPECT_LT(module_pos, decision_pos);
  EXPECT_NE(text.find("cache=miss", root_pos), std::string::npos);

  // Same mount again from the same task: the decision cache answers, and
  // the trace says so.
  auto again = kernel.Mount(alice, "/dev/sda1", "/mnt", "ext4", {});
  ASSERT_EQ(again.code(), Errno::kEPERM);
  text = kernel.syscalls().FormatTrace();
  EXPECT_NE(text.find("cache=hit"), std::string::npos) << text;
}

// Proc-level plumbing for the trace control file.
TEST(TracepointSimTest, ProcTraceWritesControlFilterAndToggle) {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();

  ASSERT_TRUE(kernel.vfs().WriteFile("/proc/protego/trace", "?pid=42&syscall=mount").ok());
  EXPECT_EQ(kernel.tracer().read_filter().pid, 42);
  EXPECT_EQ(kernel.tracer().read_filter().syscall, "mount");

  ASSERT_TRUE(kernel.vfs().WriteFile("/proc/protego/trace", "?").ok());
  EXPECT_FALSE(kernel.tracer().read_filter().active());

  EXPECT_FALSE(kernel.vfs().WriteFile("/proc/protego/trace", "?junk=1").ok());
  EXPECT_FALSE(kernel.vfs().WriteFile("/proc/protego/trace", "garbage").ok());

  ASSERT_TRUE(kernel.vfs().WriteFile("/proc/protego/trace", "off").ok());
  EXPECT_FALSE(kernel.syscalls().trace_enabled());
  ASSERT_TRUE(kernel.vfs().WriteFile("/proc/protego/trace", "on").ok());
  EXPECT_TRUE(kernel.syscalls().trace_enabled());
}

}  // namespace
}  // namespace protego
