// Unit and integration tests for the Protego LSM itself: each policy engine
// (mount whitelist, bind table, delegation, file rules, route checks) plus
// the /proc configuration interface, exercised through a full SimSystem.

#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"
#include "src/protego/proc_iface.h"
#include "src/sim/system.h"

namespace protego {
namespace {

class ProtegoLsmTest : public ::testing::Test {
 protected:
  ProtegoLsmTest() : sys_(SimMode::kProtego) {}
  SimSystem sys_;
};

// --- Bind table (§4.1.3) -----------------------------------------------------

TEST_F(ProtegoLsmTest, AllocatedPortBindableOnlyByItsInstance) {
  // The allocated instance binds without privilege.
  Task& exim = sys_.Login("exim");
  exim.exe_path = "/usr/sbin/eximd";
  auto fd = sys_.kernel().SocketCall(exim, kAfInet, kSockStream, 0);
  EXPECT_TRUE(sys_.kernel().BindCall(exim, fd.value(), 25).ok());

  // The right binary under the WRONG uid is refused.
  Task& alice = sys_.Login("alice");
  alice.exe_path = "/usr/sbin/eximd";
  auto fd2 = sys_.kernel().SocketCall(alice, kAfInet, kSockStream, 0);
  EXPECT_EQ(sys_.kernel().BindCall(alice, fd2.value(), 80).code(), Errno::kEACCES);

  // The wrong binary — even with root privilege — is refused: the
  // allocation is object policy, not a privilege check.
  Task& root = sys_.Login("root");
  root.exe_path = "/usr/sbin/httpd";
  auto fd3 = sys_.kernel().SocketCall(root, kAfInet, kSockStream, 0);
  EXPECT_EQ(sys_.kernel().BindCall(root, fd3.value(), 25).code(), Errno::kEACCES);

  // Unallocated low ports keep the legacy CAP_NET_BIND_SERVICE rule.
  auto fd4 = sys_.kernel().SocketCall(root, kAfInet, kSockStream, 0);
  EXPECT_TRUE(sys_.kernel().BindCall(root, fd4.value(), 443).ok());
  Task& bob = sys_.Login("bob");
  auto fd5 = sys_.kernel().SocketCall(bob, kAfInet, kSockStream, 0);
  EXPECT_EQ(sys_.kernel().BindCall(bob, fd5.value(), 444).code(), Errno::kEACCES);
  // High ports are free for everyone.
  EXPECT_TRUE(sys_.kernel().BindCall(bob, fd5.value(), 8080).ok());
}

TEST_F(ProtegoLsmTest, SecondAllocationOfSamePortCanBind) {
  // Regression: SocketBind used to deny at the FIRST entry whose port
  // matched, so a second (binary, uid) allocation of the same port was dead
  // policy. All allocations of a port must be scanned before denying.
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/ports",
                               "80 /usr/sbin/httpd 33\n"
                               "80 /usr/sbin/nginx 0\n")
                  .ok());

  // The SECOND allocation binds fine (pre-fix: the httpd entry denied it).
  Task& web = sys_.Login("root");
  web.exe_path = "/usr/sbin/nginx";
  auto fd = k.SocketCall(web, kAfInet, kSockStream, 0);
  EXPECT_TRUE(k.BindCall(web, fd.value(), 80).ok());
  ASSERT_TRUE(k.Close(web, fd.value()).ok());

  // The first allocation still binds, and non-allocated instances are still
  // refused.
  Task& www = sys_.Login("www-data");
  www.exe_path = "/usr/sbin/httpd";
  auto fd2 = k.SocketCall(www, kAfInet, kSockStream, 0);
  EXPECT_TRUE(k.BindCall(www, fd2.value(), 80).ok());
  Task& bob = sys_.Login("bob");
  bob.exe_path = "/usr/sbin/nginx";
  auto fd3 = k.SocketCall(bob, kAfInet, kSockStream, 0);
  EXPECT_EQ(k.BindCall(bob, fd3.value(), 80).code(), Errno::kEACCES);

  // The scan path (compiled engine off) agrees.
  sys_.lsm()->set_compiled_engine_enabled(false);
  Task& web2 = sys_.Login("root");
  web2.exe_path = "/usr/sbin/nginx";
  ASSERT_TRUE(k.Close(www, fd2.value()).ok());
  auto fd4 = k.SocketCall(web2, kAfInet, kSockStream, 0);
  EXPECT_TRUE(k.BindCall(web2, fd4.value(), 80).ok());
}

// --- Mount whitelist (§4.2) ---------------------------------------------------

TEST_F(ProtegoLsmTest, MountWhitelistMatchesDeviceMountpointTypeOptions) {
  Task& alice = sys_.Login("alice");
  Kernel& k = sys_.kernel();
  // Whitelisted, with a privilege-reducing extra option.
  EXPECT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro", "nosuid"}).ok());
  EXPECT_TRUE(k.Umount(alice, "/media/cdrom").ok());
  // Wrong mountpoint / fstype / extra privileged option: refused.
  EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/usb", "iso9660", {"ro"}).code(),
            Errno::kEPERM);
  EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "vfat", {"ro"}).code(),
            Errno::kEPERM);
  EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"rw"}).code(),
            Errno::kEPERM);
  // Glob entries work (the fuse rule covers /home/*/mnt).
  ASSERT_TRUE(k.Mkdir(alice, "/home/alice/mnt", 0755).ok());
  EXPECT_TRUE(k.Mount(alice, "fuse", "/home/alice/mnt", "fuse", {"rw", "user"}).ok());
}

TEST_F(ProtegoLsmTest, UmountHonorsMounterAndUsersOption) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  Task& bob = sys_.Login("bob");
  // "user" option: only the mounter (or root) may unmount.
  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  EXPECT_EQ(k.Umount(bob, "/media/cdrom").code(), Errno::kEPERM);
  Task& root = sys_.Login("root");
  EXPECT_TRUE(k.Umount(root, "/media/cdrom").ok());
  // "users" option: anyone may unmount.
  ASSERT_TRUE(k.Mount(alice, "/dev/sdb1", "/media/usb", "vfat", {"rw"}).ok());
  EXPECT_TRUE(k.Umount(bob, "/media/usb").ok());
}

TEST_F(ProtegoLsmTest, UmountDecisionsCountedSeparatelyFromMounts) {
  // Regression: SbUmount verdicts used to fold into mount_allowed /
  // mount_denied, hiding unmount activity. They get their own counters.
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  Task& bob = sys_.Login("bob");
  const ProtegoStats& s = sys_.lsm()->stats();
  uint64_t mount_allowed = s.mount_allowed;
  uint64_t mount_denied = s.mount_denied;
  uint64_t umount_allowed = s.umount_allowed;
  uint64_t umount_denied = s.umount_denied;

  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  EXPECT_EQ(k.Umount(bob, "/media/cdrom").code(), Errno::kEPERM);
  EXPECT_TRUE(k.Umount(alice, "/media/cdrom").ok());

  EXPECT_EQ(s.umount_allowed, umount_allowed + 1);
  EXPECT_EQ(s.umount_denied, umount_denied + 1);
  // Mount counters saw exactly the one mount, none of the umount traffic.
  EXPECT_EQ(s.mount_allowed, mount_allowed + 1);
  EXPECT_EQ(s.mount_denied, mount_denied);

  // The split shows up in /proc/protego/status.
  std::string status = k.ReadWholeFile(alice, "/proc/protego/status").value();
  EXPECT_NE(status.find(StrFormat("umount_allowed %llu\n",
                                  (unsigned long long)s.umount_allowed)),
            std::string::npos);
  EXPECT_NE(status.find(StrFormat("umount_denied %llu\n",
                                  (unsigned long long)s.umount_denied)),
            std::string::npos);
}

// --- Delegation (§4.3) ----------------------------------------------------------

TEST_F(ProtegoLsmTest, SetuidDefersWhenRestrictedRulesExist) {
  Task& bob = sys_.Login("bob");
  // bob has a command-restricted rule (lpr as alice): setuid returns 0 but
  // credentials do not change until exec.
  ASSERT_TRUE(sys_.kernel().Setuid(bob, 1000).ok());
  EXPECT_EQ(bob.cred.euid, 1001u);
  EXPECT_EQ(bob.cred.ruid, 1001u);
  EXPECT_TRUE(bob.pending_setuid.active);
  EXPECT_EQ(bob.pending_setuid.target_uid, 1000u);
}

TEST_F(ProtegoLsmTest, DeferredExecEnforcesCommandRestriction) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  (void)k.WriteWholeFile(root, "/home/alice/doc", "d", false, 0644);
  (void)k.Chown(root, "/home/alice/doc", 1000, 1000);

  Task& bob = sys_.Login("bob");
  bob.terminal->QueueInput("bobpw");
  ASSERT_TRUE(k.Setuid(bob, 1000).ok());
  auto code = k.Spawn(bob, "/usr/bin/lpr", {"/usr/bin/lpr", "/home/alice/doc"}, {});
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 0);
  EXPECT_NE(bob.stdout_buf.find("as uid=1000"), std::string::npos);

  // An undelegated command fails AT EXEC with EACCES (§4.3's documented
  // error-behaviour change).
  Task& bob2 = sys_.Login("bob");
  bob2.terminal->QueueInput("bobpw");
  ASSERT_TRUE(k.Setuid(bob2, 1000).ok());
  auto denied = k.Spawn(bob2, "/bin/cat", {"/bin/cat", "/home/alice/doc"}, {});
  EXPECT_EQ(denied.code(), Errno::kEACCES);
}

TEST_F(ProtegoLsmTest, NoDelegationMeansLegacyEperm) {
  // www-data has no rules toward bob and no password: plain EPERM.
  Task& www = sys_.Login("www-data");
  EXPECT_EQ(sys_.kernel().Setuid(www, 1001).code(), Errno::kEPERM);
  EXPECT_FALSE(www.pending_setuid.active);
}

TEST_F(ProtegoLsmTest, EnvSanitizedAndFdsClosedAcrossTransition) {
  Kernel& k = sys_.kernel();
  (void)k.InstallBinary("/usr/bin/envdump", 0755, kRootUid, kRootGid,
                        [](ProcessContext& ctx) {
                          for (const auto& [key, value] : ctx.env) {
                            ctx.Out(key + "=" + value + ";");
                          }
                          ctx.Out(StrFormat("fds=%zu", ctx.task.fds.size()));
                          return 0;
                        });
  // Add an envdump rule for charlie.
  Task& root = sys_.Login("root");
  (void)k.WriteWholeFile(root, "/etc/sudoers.d/test",
                         "charlie ALL=(root) NOPASSWD: /usr/bin/envdump\n");

  Task& charlie = sys_.Login("charlie");
  (void)k.Open(charlie, "/etc/passwd", kORdOnly);  // an fd that must not leak
  ASSERT_TRUE(k.Setuid(charlie, 0).ok());
  auto code = k.Spawn(charlie, "/usr/bin/envdump", {"/usr/bin/envdump"},
                      {{"PATH", "/bin"}, {"LD_PRELOAD", "/tmp/evil.so"}, {"IFS", "x"}});
  ASSERT_TRUE(code.ok());
  EXPECT_NE(charlie.stdout_buf.find("PATH=/bin;"), std::string::npos);
  EXPECT_EQ(charlie.stdout_buf.find("LD_PRELOAD"), std::string::npos);
  EXPECT_EQ(charlie.stdout_buf.find("IFS"), std::string::npos);
  EXPECT_NE(charlie.stdout_buf.find("fds=0"), std::string::npos);
}

TEST_F(ProtegoLsmTest, GroupMembershipAllowsSetgid) {
  // alice is a member of staff (gid 50): no password needed.
  Task& alice = sys_.Login("alice");
  EXPECT_TRUE(sys_.kernel().Setgid(alice, 50).ok());
  EXPECT_EQ(alice.cred.egid, 50u);
  // bob is not a member; with the group password he joins, without he fails.
  Task& bob = sys_.Login("bob");
  bob.terminal->QueueInput("staffpw");
  EXPECT_TRUE(sys_.kernel().Setgid(bob, 50).ok());
  Task& bob2 = sys_.Login("bob");
  EXPECT_EQ(sys_.kernel().Setgid(bob2, 50).code(), Errno::kEPERM);
  // The mail group has no password: non-members always fail.
  Task& bob3 = sys_.Login("bob");
  bob3.terminal->QueueInput("anything");
  EXPECT_EQ(sys_.kernel().Setgid(bob3, 8).code(), Errno::kEPERM);
}

TEST_F(ProtegoLsmTest, AuthenticationRecencyWindow) {
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("alicepw");
  ASSERT_TRUE(sys_.kernel().Setuid(alice, 0).ok());  // %admin rule + password
  EXPECT_EQ(alice.cred.euid, 0u);

  // A sibling session on the same terminal inside the window: no password.
  Task& alice2 = sys_.kernel().CreateTask("alice2", Cred::ForUser(1000, 1000, {115, 50}),
                                          alice.terminal);
  sys_.kernel().clock().Advance(200);
  EXPECT_TRUE(sys_.kernel().Setuid(alice2, 0).ok());

  // Beyond the 5-minute window: a password is required again (none queued).
  Task& alice3 = sys_.kernel().CreateTask("alice3", Cred::ForUser(1000, 1000, {115, 50}),
                                          alice.terminal);
  sys_.kernel().clock().Advance(400);
  EXPECT_EQ(sys_.kernel().Setuid(alice3, 0).code(), Errno::kEPERM);
}

// --- File rules (§4.4 / §4.6) -----------------------------------------------------

TEST_F(ProtegoLsmTest, FileDelegationGrantsOnlyThatBinary) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  // Direct read: refused by DAC (root-owned 0600).
  EXPECT_EQ(k.ReadWholeFile(alice, "/etc/ssh/ssh_host_key").code(), Errno::kEACCES);
  // Via the delegated binary: the signature comes back.
  auto out = sys_.RunCapture(alice, "/usr/lib/ssh-keysign", {"ssh-keysign", "data"});
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.out.find("signature "), 0u);
  // The delegation is read-only: even ssh-keysign cannot write the key.
  Task& forged = sys_.kernel().CreateTask("f", Cred::ForUser(1000, 1000), alice.terminal);
  forged.exe_path = "/usr/lib/ssh-keysign";
  EXPECT_EQ(k.WriteWholeFile(forged, "/etc/ssh/ssh_host_key", "evil").code(),
            Errno::kEACCES);
}

TEST_F(ProtegoLsmTest, ShadowFragmentsRequireReauthentication) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  // Even the OWNER must reauthenticate to read her shadow fragment.
  EXPECT_EQ(k.ReadWholeFile(alice, "/etc/shadows/alice").code(), Errno::kEACCES);
  Task& alice2 = sys_.Login("alice");
  alice2.terminal->QueueInput("alicepw");
  auto read = k.ReadWholeFile(alice2, "/etc/shadows/alice");
  EXPECT_TRUE(read.ok());
  // Freshly authenticated, a second read needs no password.
  EXPECT_TRUE(k.ReadWholeFile(alice2, "/etc/shadows/alice").ok());
  // Another user still fails on DAC even WITH authentication knowledge.
  Task& bob = sys_.Login("bob");
  bob.terminal->QueueInput("bobpw");
  EXPECT_EQ(k.ReadWholeFile(bob, "/etc/shadows/alice").code(), Errno::kEACCES);
}

TEST_F(ProtegoLsmTest, ReauthChallengesInvokingUserNotFileOwner) {
  // Regression: the reauth gate used to call EnsureAuthenticated with the
  // file owner's uid (inode.uid), so reading a reauth-gated ROOT-OWNED file
  // demanded root's password from an ordinary user. §4.6's challenge is for
  // the logged-in user's own password.
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  std::string sudoers = k.ReadWholeFile(root, "/proc/protego/sudoers").value();
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/sudoers",
                               sudoers + "Reauth_Read /etc/secrets/*\n")
                  .ok());
  ASSERT_TRUE(k.Mkdir(root, "/etc/secrets", 0755).ok());
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/secrets/config", "s3cret", false, 0644).ok());

  // alice passes DAC (0644) and reauthenticates with HER OWN password.
  // Pre-fix, this prompted for root's password and "alicepw" was rejected.
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("alicepw");
  auto read = k.ReadWholeFile(alice, "/etc/secrets/config");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "s3cret");

  // Without authenticating, the gate still denies.
  Task& alice2 = sys_.Login("alice");
  EXPECT_EQ(k.ReadWholeFile(alice2, "/etc/secrets/config").code(), Errno::kEACCES);
}

// --- PPP / routes (§4.1.2) ---------------------------------------------------------

TEST_F(ProtegoLsmTest, UserRoutesMustNotConflict) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  auto sock = k.SocketCall(alice, kAfInet, kSockDgram, 0);
  // Fresh address space: allowed.
  EXPECT_TRUE(k.Ioctl(alice, sock.value(), kSiocAddRt, "172.16.0.0/16 0.0.0.0 ppp0").ok());
  // Overlapping the LAN: refused.
  EXPECT_EQ(k.Ioctl(alice, sock.value(), kSiocAddRt, "10.0.0.0/16 0.0.0.0 ppp0").code(),
            Errno::kEPERM);
  // A user may remove only her own routes.
  EXPECT_TRUE(k.Ioctl(alice, sock.value(), kSiocDelRt, "172.16.0.0/16").ok());
  Task& bob = sys_.Login("bob");
  auto bob_sock = k.SocketCall(bob, kAfInet, kSockDgram, 0);
  EXPECT_EQ(k.Ioctl(bob, bob_sock.value(), kSiocDelRt, "10.0.0.0/24").code(), Errno::kEPERM);
}

TEST_F(ProtegoLsmTest, PppSafeOptionsOnlyForUsers) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  auto dev = k.Open(alice, "/dev/ppp", kORdWr);
  ASSERT_TRUE(dev.ok());
  auto unit = k.Ioctl(alice, dev.value(), kPppIocNewUnit, "");
  ASSERT_TRUE(unit.ok());
  EXPECT_TRUE(k.Ioctl(alice, dev.value(), kPppIocSFlags, "0 bsdcomp").ok());
  EXPECT_EQ(k.Ioctl(alice, dev.value(), kPppIocSFlags, "0 defaultroute").code(),
            Errno::kEPERM);
  // Root may set anything.
  Task& root = sys_.Login("root");
  auto rdev = k.Open(root, "/dev/ppp", kORdWr);
  EXPECT_TRUE(k.Ioctl(root, rdev.value(), kPppIocSFlags, "0 defaultroute").ok());
}

TEST_F(ProtegoLsmTest, InUsePppUnitProtectedFromOtherUsers) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  auto dev = k.Open(alice, "/dev/ppp", kORdWr);
  (void)k.Ioctl(alice, dev.value(), kPppIocNewUnit, "");
  ASSERT_TRUE(k.Ioctl(alice, dev.value(), kPppIocConnect, "0 172.16.0.1 172.16.0.2").ok());
  Task& bob = sys_.Login("bob");
  auto bdev = k.Open(bob, "/dev/ppp", kORdWr);
  EXPECT_EQ(k.Ioctl(bob, bdev.value(), kPppIocSFlags, "0 bsdcomp").code(), Errno::kEBUSY);
}

// --- /proc interface --------------------------------------------------------------

TEST_F(ProtegoLsmTest, ProcFilesParseValidateSwap) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  std::string before = k.ReadWholeFile(root, "/proc/protego/ports").value();
  EXPECT_EQ(k.WriteWholeFile(root, "/proc/protego/ports", "99999 /x 0\n").code(),
            Errno::kEINVAL);
  EXPECT_EQ(k.ReadWholeFile(root, "/proc/protego/ports").value(), before);
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/ports", "25 /usr/sbin/eximd 101\n").ok());
  EXPECT_EQ(sys_.lsm()->bind_table().size(), 1u);
}

TEST_F(ProtegoLsmTest, ProcFilesAreRootOnly) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  EXPECT_EQ(k.ReadWholeFile(alice, "/proc/protego/sudoers").code(), Errno::kEACCES);
  EXPECT_EQ(k.WriteWholeFile(alice, "/proc/protego/mounts", "x /y ext4 user\n").code(),
            Errno::kEACCES);
  // The status file is world-readable.
  EXPECT_TRUE(k.ReadWholeFile(alice, "/proc/protego/status").ok());
}

TEST_F(ProtegoLsmTest, StatsCountDecisions) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  uint64_t allowed = sys_.lsm()->stats().mount_allowed;
  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  EXPECT_EQ(sys_.lsm()->stats().mount_allowed, allowed + 1);
  uint64_t raw = sys_.lsm()->stats().raw_sockets_allowed;
  (void)k.SocketCall(alice, kAfInet, kSockRaw, kProtoIcmp);
  EXPECT_EQ(sys_.lsm()->stats().raw_sockets_allowed, raw + 1);
}

// --- dm-crypt (§4, Table 4) ---------------------------------------------------------

TEST_F(ProtegoLsmTest, DmCryptSysExposesDeviceIoctlStaysRoot) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  EXPECT_EQ(k.ReadWholeFile(alice, "/sys/block/dm-0/slaves").value(), "/dev/sda3\n");
  auto fd = k.Open(alice, "/dev/mapper/control", kORdWr);
  EXPECT_EQ(fd.code(), Errno::kEACCES);  // device node is 0600 root
  Task& root = sys_.Login("root");
  auto rfd = k.Open(root, "/dev/mapper/control", kORdWr);
  auto status = k.Ioctl(root, rfd.value(), kDmTableStatus, "dm-0");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().find("key="), std::string::npos);  // the flawed interface
}

TEST_F(ProtegoLsmTest, UserDbProcRoundTrip) {
  UserDb db = sys_.lsm()->user_db();
  std::string serialized = SerializeUserDbSections(db);
  auto parsed = ParseUserDbSections(serialized);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().users().size(), db.users().size());
  EXPECT_EQ(parsed.value().groups().size(), db.groups().size());
  EXPECT_EQ(ParseUserDbSections("stray line\n").code(), Errno::kEINVAL);
}

}  // namespace
}  // namespace protego
