// Metrics registry tests: histogram bucket math, Prometheus text exposition
// validity, JSON export, and the PR's identity requirement — the legacy
// /proc/protego/status counters and the registry must report the same
// numbers, because they read the same underlying storage.

#include "src/base/metrics.h"

#include <cmath>
#include <cstdlib>

#include "gtest/gtest.h"
#include "src/kernel/kernel.h"
#include "src/protego/protego_lsm.h"
#include "src/sim/system.h"
#include "tests/prometheus_lint.h"

namespace protego {
namespace {

TEST(HistogramTest, BucketMathIsLog2) {
  // Bucket 0 holds exact zeros; bucket i>0 has upper bound 2^(i-1).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 3u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(5), 4u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(9), 5u);
  EXPECT_EQ(Histogram::BucketIndex(1u << 30), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex((1u << 30) + 1), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::BucketBound(0), 0u);
  EXPECT_EQ(Histogram::BucketBound(1), 1u);
  EXPECT_EQ(Histogram::BucketBound(5), 16u);

  // Every value must land in the bucket whose bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull, 4096ull, 123456789ull}) {
    size_t idx = Histogram::BucketIndex(v);
    if (idx < Histogram::kBuckets - 1) {
      EXPECT_LE(v, Histogram::BucketBound(idx)) << v;
    }
    if (idx > 0) {
      EXPECT_GT(v, Histogram::BucketBound(idx - 1)) << v;
    }
  }
}

TEST(HistogramTest, ObserveSumCountReset) {
  Histogram h;
  h.Observe(0);
  h.Observe(3);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(3)), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(1000)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

// Extracts the value of the sample line starting with `prefix` (exact
// name{labels} match up to the space).
double SampleValue(const std::string& text, const std::string& prefix) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.rfind(prefix + " ", 0) == 0) {
      return std::strtod(line.c_str() + prefix.size() + 1, nullptr);
    }
  }
  ADD_FAILURE() << "no sample " << prefix;
  return std::nan("");
}

TEST(MetricsRegistryTest, PrometheusTextIsValidAndComplete) {
  MetricsRegistry reg;
  Histogram h;
  h.Observe(0);
  h.Observe(3);
  h.Observe(70);
  reg.AddCollector([&h](MetricsBuilder& b) {
    b.Counter("test_requests_total", "Requests.", {{"path", "a\"b\\c\nd"}}, 7);
    b.Counter("test_requests_total", "Requests.", {{"path", "plain"}}, 2);
    b.Gauge("test_temperature", "Degrees.", {}, 21.5);
    b.Histo("test_latency_ticks", "Latency.", {{"op", "x"}}, h);
  });

  std::string text = reg.PrometheusText();
  auto lint = prom::LintPrometheusText(text);
  EXPECT_FALSE(lint.has_value()) << *lint;

  EXPECT_NE(text.find("# HELP test_requests_total Requests.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_temperature gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_ticks histogram\n"), std::string::npos);
  // Label escaping: backslash, quote, newline.
  EXPECT_NE(text.find("test_requests_total{path=\"a\\\"b\\\\c\\nd\"} 7\n"), std::string::npos);

  // Cumulative buckets: 0 -> 1, 4 -> 2, 128 -> 3, +Inf == _count == 3.
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_bucket{op=\"x\",le=\"0\"}"), 1);
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_bucket{op=\"x\",le=\"4\"}"), 2);
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_bucket{op=\"x\",le=\"128\"}"), 3);
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_bucket{op=\"x\",le=\"+Inf\"}"), 3);
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_sum{op=\"x\"}"), 73);
  EXPECT_EQ(SampleValue(text, "test_latency_ticks_count{op=\"x\"}"), 3);
}

TEST(MetricsRegistryTest, JsonExportCarriesFamiliesAndBuckets) {
  MetricsRegistry reg;
  Histogram h;
  h.Observe(5);
  h.Observe(uint64_t{1} << 40);  // lands in the +Inf bucket
  reg.AddCollector([&h](MetricsBuilder& b) {
    b.Counter("c_total", "c", {{"k", "v"}}, 3);
    b.Histo("h_ticks", "h", {}, h);
  });
  std::string json = reg.Json();
  EXPECT_NE(json.find("\"families\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"h_ticks\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, LintRejectsMalformedExpositions) {
  EXPECT_TRUE(prom::LintPrometheusText("no newline at end").has_value());
  EXPECT_TRUE(prom::LintPrometheusText("bad-name{} 1\n").has_value());
  EXPECT_TRUE(prom::LintPrometheusText("x{l=unquoted} 1\n").has_value());
  EXPECT_TRUE(prom::LintPrometheusText("x 1 2 3\n").has_value());
  // Histogram without +Inf bucket.
  EXPECT_TRUE(prom::LintPrometheusText("# TYPE h histogram\n"
                                       "h_bucket{le=\"1\"} 1\n"
                                       "h_sum 1\nh_count 1\n")
                  .has_value());
  // Non-cumulative buckets.
  EXPECT_TRUE(prom::LintPrometheusText("# TYPE h histogram\n"
                                       "h_bucket{le=\"1\"} 5\n"
                                       "h_bucket{le=\"+Inf\"} 3\n"
                                       "h_sum 1\nh_count 3\n")
                  .has_value());
}

// The PR's identity requirement: the registry is a *view* over the same
// counters the legacy /proc files read, so the two can never disagree.
TEST(MetricsRegistryTest, LegacyCountersReadIdenticalValuesFromRegistry) {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();
  Task& alice = sys.Login("alice");

  // Generate traffic: successes, an EACCES failure, and a denied mount.
  for (int i = 0; i < 5; ++i) {
    kernel.GetPid(alice);
  }
  EXPECT_FALSE(kernel.Open(alice, "/etc/shadow", kORdOnly).ok());
  EXPECT_FALSE(kernel.Mount(alice, "/dev/sda1", "/mnt", "ext4", {}).ok());

  std::string text = kernel.metrics().PrometheusText();
  auto lint = prom::LintPrometheusText(text);
  EXPECT_FALSE(lint.has_value()) << *lint;

  const SyscallGate::PerSyscall& getpid = kernel.syscalls().stats(Sysno::kGetPid);
  EXPECT_EQ(SampleValue(text, "protego_syscall_calls_total{syscall=\"getpid\"}"),
            static_cast<double>(getpid.calls));
  const SyscallGate::PerSyscall& open = kernel.syscalls().stats(Sysno::kOpen);
  EXPECT_EQ(SampleValue(text, "protego_syscall_errors_total{syscall=\"open\"}"),
            static_cast<double>(open.errors));
  EXPECT_EQ(SampleValue(text, "protego_syscall_latency_ticks_count{syscall=\"getpid\"}"),
            static_cast<double>(getpid.lat_ticks.count()));

  EXPECT_EQ(SampleValue(text, "protego_lsm_decision_cache_hits_total"),
            static_cast<double>(kernel.lsm().decision_cache_hits()));
  EXPECT_EQ(SampleValue(text, "protego_lsm_decision_cache_misses_total"),
            static_cast<double>(kernel.lsm().decision_cache_misses()));
  EXPECT_EQ(SampleValue(text, "protego_policy_generation"),
            static_cast<double>(kernel.lsm().policy_generation()));

  ASSERT_NE(sys.lsm(), nullptr);
  EXPECT_EQ(SampleValue(text, "protego_policy_decisions_total{op=\"mount\",outcome=\"denied\"}"),
            static_cast<double>(sys.lsm()->stats().mount_denied));
  EXPECT_EQ(SampleValue(text, "protego_audit_dropped_total"),
            static_cast<double>(kernel.audit_dropped()));

  // Per-hook latency histograms exist for hooks that actually ran.
  EXPECT_NE(text.find("protego_lsm_hook_latency_ticks_bucket{hook=\"inode_permission\""),
            std::string::npos);
  EXPECT_NE(text.find("protego_lsm_hook_latency_ticks_bucket{hook=\"sb_mount\""),
            std::string::npos);

  // And the /proc view is byte-identical to the registry export.
  auto proc_text = kernel.vfs().ReadFile("/proc/protego/metrics");
  ASSERT_TRUE(proc_text.ok());
  // The two exports race only against intervening syscalls; none happened.
  EXPECT_EQ(proc_text.value(), kernel.metrics().PrometheusText());
}

}  // namespace
}  // namespace protego
