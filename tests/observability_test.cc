// Always-on observability tests (DESIGN.md §12): the per-syscall dispatch
// word, seeded head sampling and its replay guarantee, the tail-exemplar
// reservoir, per-layer latency attribution and its telescoping identity,
// the /proc/protego/trace control commands and ?since cursor, the
// /proc/protego/profile file, and the size-bounded metrics JSON excerpt.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/attribution.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"
#include "src/sim/system.h"
#include "src/workload/workload.h"
#include "tests/prometheus_lint.h"

namespace protego {
namespace {

// Advances the virtual clock by a one-shot step on the next
// inode_permission dispatch, giving the enclosing syscall an exact,
// test-chosen duration in ticks (the reservoir's ranking key).
class TickModule : public SecurityModule {
 public:
  explicit TickModule(Clock* clock) : clock_(clock) {}
  const char* name() const override { return "tick"; }

  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override {
    (void)task;
    (void)path;
    (void)inode;
    (void)may;
    *cacheable = false;  // every stat must reach this body
    clock_->Advance(step_);
    step_ = 0;
    return HookVerdict::kDefault;
  }

  void set_step(uint64_t step) { step_ = step; }

 private:
  Clock* clock_;
  uint64_t step_ = 0;
};

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() {
    kernel_.lsm().Register(std::make_unique<CapabilityModule>());
    auto tick = std::make_unique<TickModule>(&kernel_.clock());
    tick_ = tick.get();
    kernel_.lsm().Register(std::move(tick));
    (void)kernel_.vfs().EnsureDirs("/etc");
    (void)kernel_.vfs().CreateFile("/etc/passwd", 0644, kRootUid, kRootGid, "x");
  }

  Task& User(Uid uid) { return kernel_.CreateTask("u", Cred::ForUser(uid, uid), &terminal_); }

  Kernel kernel_;
  Terminal terminal_;
  TickModule* tick_ = nullptr;
};

// --- Per-syscall dispatch ----------------------------------------------------

TEST_F(ObservabilityTest, DispatchWordTracksConfiguration) {
  SyscallGate& gate = kernel_.syscalls();
  uint8_t d = gate.Dispatch(Sysno::kStat);
  EXPECT_NE(d & SyscallGate::kDispatchTrace, 0);
  EXPECT_NE(d & SyscallGate::kDispatchExemplar, 0);
  EXPECT_EQ(d & SyscallGate::kDispatchTimed, 0);
  EXPECT_EQ(d & SyscallGate::kDispatchSampled, 0);

  // Narrowing the traced set clears ONLY the narrowed syscall's trace bit.
  gate.SetSyscallTraced(Sysno::kStat, false);
  EXPECT_EQ(gate.Dispatch(Sysno::kStat) & SyscallGate::kDispatchTrace, 0);
  EXPECT_NE(gate.Dispatch(Sysno::kOpen) & SyscallGate::kDispatchTrace, 0);
  gate.SetSyscallTraced(Sysno::kStat, true);

  // Wall-clock timing honors the per-syscall timed set.
  gate.set_wallclock_timing(true);
  EXPECT_NE(gate.Dispatch(Sysno::kStat) & SyscallGate::kDispatchTimed, 0);
  gate.SetSyscallTimed(Sysno::kStat, false);
  EXPECT_EQ(gate.Dispatch(Sysno::kStat) & SyscallGate::kDispatchTimed, 0);
  EXPECT_NE(gate.Dispatch(Sysno::kOpen) & SyscallGate::kDispatchTimed, 0);
  gate.set_wallclock_timing(false);

  // A sampling rate on the syscall point sets the sampled bit.
  kernel_.tracer().set_sample_rate(TracepointId::kSyscall, 8);
  EXPECT_NE(gate.Dispatch(Sysno::kStat) & SyscallGate::kDispatchSampled, 0);
  kernel_.tracer().set_sample_rate(TracepointId::kSyscall, 0);
  EXPECT_EQ(gate.Dispatch(Sysno::kStat) & SyscallGate::kDispatchSampled, 0);

  // A fully-off tracer clears both the trace and exemplar bits.
  kernel_.tracer().set_enabled(false);
  d = gate.Dispatch(Sysno::kStat);
  EXPECT_EQ(d & SyscallGate::kDispatchTrace, 0);
  EXPECT_EQ(d & SyscallGate::kDispatchExemplar, 0);
  kernel_.tracer().set_enabled(true);
}

TEST_F(ObservabilityTest, UntracedSyscallsSkipTraceButKeepStats) {
  Task& alice = User(1000);
  SyscallGate& gate = kernel_.syscalls();

  ASSERT_TRUE(kernel_.Stat(alice, "/etc/passwd").ok());
  EXPECT_NE(gate.FormatTrace().find("stat("), std::string::npos);

  gate.ClearTrace();
  gate.SetAllSyscallsTraced(false);
  const uint64_t calls = gate.stats(Sysno::kStat).calls;
  ASSERT_TRUE(kernel_.Stat(alice, "/etc/passwd").ok());
  EXPECT_EQ(gate.FormatTrace().find("stat("), std::string::npos);
  EXPECT_EQ(gate.stats(Sysno::kStat).calls, calls + 1);

  // Re-widening restores emission.
  gate.SetSyscallTraced(Sysno::kStat, true);
  ASSERT_TRUE(kernel_.Stat(alice, "/etc/passwd").ok());
  EXPECT_NE(gate.FormatTrace().find("stat("), std::string::npos);
}

// --- Seeded sampling ---------------------------------------------------------

TEST(SamplingDeterminismTest, SameSeedSameDecisionsAcrossRuns) {
  auto run = []() {
    Kernel k;
    Terminal term;
    Task& t = k.CreateTask("u", Cred::ForUser(1000, 1000), &term);
    k.tracer().set_sample_seed(42);
    k.tracer().set_sample_rate(TracepointId::kSyscall, 3);
    for (int i = 0; i < 50; ++i) {
      (void)k.GetPid(t);
    }
    std::vector<uint64_t> kept;
    for (const TraceEvent& ev : k.tracer().Snapshot()) {
      if (ev.tp == TracepointId::kSyscall) {
        kept.push_back(ev.seq);
      }
    }
    return std::make_pair(kept, k.tracer().sampled_out(TracepointId::kSyscall));
  };

  auto [kept1, out1] = run();
  auto [kept2, out2] = run();
  auto [kept3, out3] = run();
  EXPECT_FALSE(kept1.empty());
  EXPECT_GT(out1, 0u);
  EXPECT_EQ(kept1, kept2);
  EXPECT_EQ(kept1, kept3);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out1, out3);
}

TEST(SamplingDeterminismTest, DifferentSeedsDiverge) {
  auto run = [](uint64_t seed) {
    Kernel k;
    Terminal term;
    Task& t = k.CreateTask("u", Cred::ForUser(1000, 1000), &term);
    k.tracer().set_sample_seed(seed);
    k.tracer().set_sample_rate(TracepointId::kSyscall, 3);
    for (int i = 0; i < 200; ++i) {
      (void)k.GetPid(t);
    }
    std::vector<uint64_t> kept;
    for (const TraceEvent& ev : k.tracer().Snapshot()) {
      if (ev.tp == TracepointId::kSyscall) {
        kept.push_back(ev.seq);
      }
    }
    return kept;
  };
  EXPECT_NE(run(1), run(2));
}

// --- Tail-exemplar reservoir -------------------------------------------------

TEST_F(ObservabilityTest, ReservoirKeepsTheKSlowestCalls) {
  Task& alice = User(1000);
  for (uint64_t step : {5u, 1u, 9u, 3u, 7u, 2u, 8u}) {
    tick_->set_step(step);
    ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  }
  auto ex = kernel_.syscalls().ExemplarsFor(Sysno::kAccess);
  ASSERT_EQ(ex.size(), SyscallGate::kExemplarSlots);
  EXPECT_EQ(ex[0].dur_ticks, 9u);
  EXPECT_EQ(ex[1].dur_ticks, 8u);
  EXPECT_EQ(ex[2].dur_ticks, 7u);
  EXPECT_EQ(ex[3].dur_ticks, 5u);
  for (const auto& e : ex) {
    EXPECT_NE(e.span, 0u);
    EXPECT_EQ(e.pid, alice.pid);
  }
}

TEST_F(ObservabilityTest, ReservoirTiesKeepTheIncumbent) {
  Task& alice = User(1000);
  for (int i = 0; i < 4; ++i) {
    tick_->set_step(6);
    ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  }
  auto before = kernel_.syscalls().ExemplarsFor(Sysno::kAccess);
  ASSERT_EQ(before.size(), 4u);

  // An equal-duration fifth call must not displace any earlier exemplar.
  tick_->set_step(6);
  ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  auto after = kernel_.syscalls().ExemplarsFor(Sysno::kAccess);
  ASSERT_EQ(after.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(before[i].span, after[i].span);
  }
}

TEST_F(ObservabilityTest, ResetStatsClearsReservoirAndDisableStopsCapture) {
  Task& alice = User(1000);
  tick_->set_step(4);
  ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  EXPECT_FALSE(kernel_.syscalls().ExemplarsFor(Sysno::kAccess).empty());

  kernel_.syscalls().ResetStats();
  EXPECT_TRUE(kernel_.syscalls().ExemplarsFor(Sysno::kAccess).empty());

  kernel_.syscalls().set_exemplars_enabled(false);
  tick_->set_step(4);
  ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  EXPECT_TRUE(kernel_.syscalls().ExemplarsFor(Sysno::kAccess).empty());
}

TEST_F(ObservabilityTest, ExemplarsEscapeHeadSampling) {
  // Rate so high every event is sampled out — the reservoir must still see
  // every call (its whole point is catching what sampling drops).
  kernel_.tracer().set_sample_rate(TracepointId::kSyscall, 1000000);
  kernel_.tracer().set_sample_seed(7);
  Task& alice = User(1000);
  kernel_.syscalls().ClearTrace();
  tick_->set_step(3);
  ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
  EXPECT_EQ(kernel_.syscalls().FormatTrace().find("access("), std::string::npos);
  ASSERT_EQ(kernel_.syscalls().ExemplarsFor(Sysno::kAccess).size(), 1u);
  EXPECT_EQ(kernel_.syscalls().ExemplarsFor(Sysno::kAccess)[0].dur_ticks, 3u);
}

// --- Per-layer latency attribution -------------------------------------------

TEST_F(ObservabilityTest, AttributionTelescopesAndFoldsPaths) {
  kernel_.profiler().set_enabled(true);
  Task& alice = User(1000);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kernel_.Access(alice, "/etc/passwd", kMayRead).ok());
    (void)kernel_.GetPid(alice);
  }
  kernel_.profiler().set_enabled(false);

  const LayerProfiler& prof = kernel_.profiler();
  EXPECT_GT(prof.root_count(), 0u);
  EXPECT_EQ(prof.dropped(), 0u);
  uint64_t self_sum = 0;
  for (size_t i = 0; i < kLayerCount; ++i) {
    self_sum += prof.Totals(static_cast<Layer>(i)).self_ns;
  }
  // The telescoping identity: per-layer self times sum EXACTLY to the
  // inclusive time of the root frames (single-threaded, quiescent).
  EXPECT_EQ(self_sum, prof.root_ns());

  EXPECT_GT(prof.Totals(Layer::kGate).count, 0u);
  EXPECT_GT(prof.Totals(Layer::kLsm).count, 0u);
  EXPECT_GT(prof.Totals(Layer::kVfs).count, 0u);

  std::string profile = prof.FormatProfile();
  EXPECT_NE(profile.find("# layer-profile enabled=0"), std::string::npos);
  EXPECT_NE(profile.find("# layer gate"), std::string::npos);
  EXPECT_NE(profile.find("gate;"), std::string::npos);

  bool saw_lsm_path = false;
  for (const auto& entry : prof.Folded()) {
    if (entry.stack.find("gate;") == 0 && entry.stack.find("lsm") != std::string::npos) {
      saw_lsm_path = true;
      EXPECT_GT(entry.count, 0u);
    }
  }
  EXPECT_TRUE(saw_lsm_path);
}

TEST_F(ObservabilityTest, AttributionFrameCountsAreDeterministic) {
  auto run = []() {
    Kernel k;
    k.lsm().Register(std::make_unique<CapabilityModule>());
    (void)k.vfs().EnsureDirs("/etc");
    (void)k.vfs().CreateFile("/etc/passwd", 0644, kRootUid, kRootGid, "x");
    Terminal term;
    Task& t = k.CreateTask("u", Cred::ForUser(1000, 1000), &term);
    k.profiler().set_enabled(true);
    for (int i = 0; i < 10; ++i) {
      (void)k.Access(t, "/etc/passwd", kMayRead);
    }
    std::vector<std::pair<std::string, uint64_t>> folded;
    for (const auto& e : k.profiler().Folded()) {
      folded.emplace_back(e.stack, e.count);
    }
    std::vector<uint64_t> counts;
    for (size_t i = 0; i < kLayerCount; ++i) {
      counts.push_back(k.profiler().Totals(static_cast<Layer>(i)).count);
    }
    return std::make_pair(folded, counts);
  };
  auto [folded1, counts1] = run();
  auto [folded2, counts2] = run();
  EXPECT_FALSE(folded1.empty());
  EXPECT_EQ(folded1, folded2);
  EXPECT_EQ(counts1, counts2);
}

// --- /proc/protego interface -------------------------------------------------

class ObservabilityProcTest : public ::testing::Test {
 protected:
  ObservabilityProcTest() : sys_(SimMode::kProtego), root_(sys_.Login("root")) {}

  Result<Unit> WriteTrace(const std::string& cmd) {
    return sys_.kernel().WriteWholeFile(root_, "/proc/protego/trace", cmd);
  }

  SimSystem sys_;
  Task& root_;
};

TEST_F(ObservabilityProcTest, SinceCursorFiltersOldRootsAndAdvertisesNext) {
  Kernel& k = sys_.kernel();
  (void)k.GetPid(root_);
  (void)k.GetPid(root_);
  auto full = k.ReadWholeFile(root_, "/proc/protego/trace");
  ASSERT_TRUE(full.ok());
  EXPECT_NE(full.value().find("getpid("), std::string::npos);

  // Cursor at the current end: previous roots disappear, the next-cursor
  // trailer tells the poller where to resume.
  const uint64_t next = k.tracer().seq();
  ASSERT_TRUE(WriteTrace("?since=" + std::to_string(next)).ok());
  auto tail = k.ReadWholeFile(root_, "/proc/protego/trace");
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().find("getpid("), std::string::npos);
  EXPECT_NE(tail.value().find("# next: "), std::string::npos);

  // Bare "since" resets the cursor; the old roots come back.
  ASSERT_TRUE(WriteTrace("?since").ok());
  auto again = k.ReadWholeFile(root_, "/proc/protego/trace");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().find("getpid("), std::string::npos);

  EXPECT_EQ(WriteTrace("?since=junk").code(), Errno::kEINVAL);
}

TEST_F(ObservabilityProcTest, SampleSeedAndSetCommands) {
  Kernel& k = sys_.kernel();

  ASSERT_TRUE(WriteTrace("sample=all:8").ok());
  EXPECT_EQ(k.tracer().sample_rate(TracepointId::kSyscall), 8u);
  EXPECT_EQ(k.tracer().sample_rate(TracepointId::kLsmHook), 8u);
  ASSERT_TRUE(WriteTrace("sample=lsm_hook:4").ok());
  EXPECT_EQ(k.tracer().sample_rate(TracepointId::kLsmHook), 4u);
  EXPECT_EQ(k.tracer().sample_rate(TracepointId::kSyscall), 8u);
  ASSERT_TRUE(WriteTrace("sample=all:0").ok());

  EXPECT_EQ(WriteTrace("sample=bogus:4").code(), Errno::kEINVAL);
  EXPECT_EQ(WriteTrace("sample=all:x").code(), Errno::kEINVAL);
  EXPECT_EQ(WriteTrace("sample=all").code(), Errno::kEINVAL);

  ASSERT_TRUE(WriteTrace("seed=99").ok());
  EXPECT_EQ(k.tracer().sample_seed(), 99u);
  EXPECT_EQ(WriteTrace("seed=z").code(), Errno::kEINVAL);

  SyscallGate& gate = k.syscalls();
  ASSERT_TRUE(WriteTrace("syscalls=stat,open").ok());
  EXPECT_TRUE(gate.syscall_traced(Sysno::kStat));
  EXPECT_TRUE(gate.syscall_traced(Sysno::kOpen));
  EXPECT_FALSE(gate.syscall_traced(Sysno::kGetPid));
  ASSERT_TRUE(WriteTrace("syscalls=none").ok());
  EXPECT_FALSE(gate.syscall_traced(Sysno::kStat));
  ASSERT_TRUE(WriteTrace("syscalls=all").ok());
  EXPECT_TRUE(gate.syscall_traced(Sysno::kGetPid));

  // A bad name rejects the whole list — nothing is applied.
  EXPECT_EQ(WriteTrace("syscalls=stat,bogus").code(), Errno::kEINVAL);
  EXPECT_TRUE(gate.syscall_traced(Sysno::kGetPid));

  ASSERT_TRUE(WriteTrace("timed=mount").ok());
  EXPECT_TRUE(gate.syscall_timed(Sysno::kMount));
  EXPECT_FALSE(gate.syscall_timed(Sysno::kStat));
  ASSERT_TRUE(WriteTrace("timed=all").ok());

  EXPECT_EQ(WriteTrace("gibberish").code(), Errno::kEINVAL);
}

TEST_F(ObservabilityProcTest, ProfileFileTogglesAndRenders) {
  Kernel& k = sys_.kernel();
  EXPECT_FALSE(k.profiler().enabled());
  ASSERT_TRUE(k.WriteWholeFile(root_, "/proc/protego/profile", "on").ok());
  EXPECT_TRUE(k.profiler().enabled());

  // A denied mount exercises gate -> lsm under the profiler.
  Task& alice = sys_.Login("alice");
  (void)sys_.kernel().Mount(alice, "/dev/sdb1", "/mnt", "ext4", {});

  auto profile = k.ReadWholeFile(root_, "/proc/protego/profile");
  ASSERT_TRUE(profile.ok());
  EXPECT_NE(profile.value().find("# layer-profile enabled=1"), std::string::npos);
  EXPECT_NE(profile.value().find("gate"), std::string::npos);

  ASSERT_TRUE(k.WriteWholeFile(root_, "/proc/protego/profile", "off").ok());
  EXPECT_FALSE(k.profiler().enabled());
  ASSERT_TRUE(k.WriteWholeFile(root_, "/proc/protego/profile", "clear").ok());
  EXPECT_EQ(k.profiler().root_count(), 0u);
  EXPECT_EQ(k.WriteWholeFile(root_, "/proc/protego/profile", "bogus").code(),
            Errno::kEINVAL);
}

// --- Workload integration ----------------------------------------------------

workload::WorkloadSpec ObservedSpec(ExecMode mode) {
  workload::WorkloadSpec spec;
  spec.mix = workload::Mix::kWebServe;
  spec.tasks = 4;
  spec.total_ops = 2000;
  spec.seed = 7;
  spec.exec_mode = mode;
  spec.trace = true;
  spec.sample_rate = 16;
  spec.profile = true;
  return spec;
}

TEST(ObservabilityWorkloadTest, SampledRunReplaysUnderDetScheduler) {
  auto spec = ObservedSpec(ExecMode::kDeterministic);
  auto r1 = workload::RunWorkload(spec, SimMode::kProtego);
  auto r2 = workload::RunWorkload(spec, SimMode::kProtego);
  auto r3 = workload::RunWorkload(spec, SimMode::kProtego);
  EXPECT_GT(r1.trace_sampled_out, 0u);
  EXPECT_EQ(r1.trace_sampled_out, r2.trace_sampled_out);
  EXPECT_EQ(r1.trace_sampled_out, r3.trace_sampled_out);
  EXPECT_EQ(r1.profile, r2.profile);
  EXPECT_EQ(r1.profile, r3.profile);
}

TEST(ObservabilityWorkloadTest, SampledRunReplaysUnderParallelExec) {
  auto spec = ObservedSpec(ExecMode::kParallel);
  auto r1 = workload::RunWorkload(spec, SimMode::kProtego);
  auto r2 = workload::RunWorkload(spec, SimMode::kProtego);
  EXPECT_GT(r1.trace_sampled_out, 0u);
  EXPECT_EQ(r1.trace_sampled_out, r2.trace_sampled_out);
  EXPECT_EQ(r1.profile, r2.profile);
}

TEST(ObservabilityWorkloadTest, AttributionCoversTheRootTime) {
  auto r = workload::RunWorkload(ObservedSpec(ExecMode::kDeterministic),
                                 SimMode::kProtego);
  ASSERT_GT(r.attrib_root_ns, 0u);
  ASSERT_GT(r.attrib_self_ns, 0u);
  // The acceptance criterion: summed per-layer self time within 10% of the
  // end-to-end root time (the identity is exact; the slack covers frames
  // still open at snapshot, of which there are none post-Join).
  const double ratio =
      static_cast<double>(r.attrib_self_ns) / static_cast<double>(r.attrib_root_ns);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(ObservabilityWorkloadTest, MacroMetricsExportPassesLintWithNewFamilies) {
  auto r = workload::RunWorkload(ObservedSpec(ExecMode::kDeterministic),
                                 SimMode::kProtego);
  ASSERT_FALSE(r.metrics_text.empty());
  auto err = prom::LintPrometheusText(r.metrics_text);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_NE(r.metrics_text.find("protego_layer_self_time"), std::string::npos);
  EXPECT_NE(r.metrics_text.find("protego_observer_self_ns_total"), std::string::npos);
  EXPECT_NE(r.metrics_text.find("protego_trace_sampled_out_total"), std::string::npos);
  // Bucket-line exemplars from the tail reservoir.
  EXPECT_NE(r.metrics_text.find(" # {"), std::string::npos);
}

// --- Metrics JSON excerpt ----------------------------------------------------

TEST_F(ObservabilityTest, JsonExcerptIsBoundedAndCountsOmissions) {
  Task& alice = User(1000);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kernel_.Stat(alice, "/etc/passwd").ok());
    (void)kernel_.GetPid(alice);
  }
  std::string excerpt = kernel_.metrics().JsonExcerpt(1);
  EXPECT_NE(excerpt.find("\"omitted\""), std::string::npos);
  // Bounded: strictly smaller than the full export for a busy registry.
  EXPECT_LT(excerpt.size(), kernel_.metrics().Json().size());
  // Stable: two reads of an idle kernel render identically.
  EXPECT_EQ(excerpt, kernel_.metrics().JsonExcerpt(1));
}

}  // namespace
}  // namespace protego
