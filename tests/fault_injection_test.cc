// The fault-injection framework, resource-limit enforcement, and graceful
// degradation contracts: deterministic injection, every real exhaustion
// errno (EMFILE/ENFILE/ENOSPC/ENOMEM) reachable with the right string,
// proc-write atomicity, utilities failing cleanly under injected EIO,
// transactional policy-swap rollback, and the full error-path sweep.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/protego/proc_iface.h"
#include "src/sim/system.h"
#include "src/study/fault_sweep.h"
#include "src/vfs/types.h"

namespace protego {
namespace {

FaultConfig AlwaysFault(Errno e, uint64_t times = 0) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.error = e;
  cfg.times = times;
  return cfg;
}

// --- Registry semantics -------------------------------------------------------

TEST(FaultRegistry, DisabledRegistryInjectsNothing) {
  FaultRegistry faults;
  EXPECT_FALSE(faults.any_enabled());
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    EXPECT_EQ(faults.Evaluate(static_cast<FaultSite>(i)), Errno::kOk);
  }
  EXPECT_EQ(faults.total_injected(), 0u);
}

TEST(FaultRegistry, ConfigureValidates) {
  FaultRegistry faults;
  FaultConfig cfg = AlwaysFault(Errno::kEIO);
  cfg.prob_den = 0;
  EXPECT_EQ(faults.Configure(FaultSite::kFdAlloc, cfg).error().code(), Errno::kEINVAL);
  cfg = AlwaysFault(Errno::kEIO);
  cfg.prob_num = 3;
  cfg.prob_den = 2;
  EXPECT_EQ(faults.Configure(FaultSite::kFdAlloc, cfg).error().code(), Errno::kEINVAL);
  cfg = AlwaysFault(Errno::kEIO);
  cfg.interval = 0;
  EXPECT_EQ(faults.Configure(FaultSite::kFdAlloc, cfg).error().code(), Errno::kEINVAL);
  cfg = AlwaysFault(Errno::kOk);
  EXPECT_EQ(faults.Configure(FaultSite::kFdAlloc, cfg).error().code(), Errno::kEINVAL);
  EXPECT_FALSE(faults.any_enabled());
}

TEST(FaultRegistry, IntervalAndTimesAreExact) {
  FaultRegistry faults;
  FaultConfig cfg = AlwaysFault(Errno::kEIO, /*times=*/2);
  cfg.interval = 3;  // every 3rd matching evaluation
  ASSERT_TRUE(faults.Configure(FaultSite::kFdAlloc, cfg).ok());
  std::vector<int> injected_at;
  for (int i = 1; i <= 12; ++i) {
    if (faults.Evaluate(FaultSite::kFdAlloc) != Errno::kOk) {
      injected_at.push_back(i);
    }
  }
  EXPECT_EQ(injected_at, (std::vector<int>{3, 6}));  // times=2 caps it
  EXPECT_EQ(faults.injected(FaultSite::kFdAlloc), 2u);
  EXPECT_EQ(faults.evaluations(FaultSite::kFdAlloc), 12u);
}

TEST(FaultRegistry, ProbabilisticStreamIsSeedDeterministic) {
  auto pattern = [](uint64_t seed) {
    FaultRegistry faults;
    FaultConfig cfg = AlwaysFault(Errno::kEIO);
    cfg.prob_num = 1;
    cfg.prob_den = 3;
    cfg.seed = seed;
    EXPECT_TRUE(faults.Configure(FaultSite::kLsmHook, cfg).ok());
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += faults.Evaluate(FaultSite::kLsmHook) == Errno::kOk ? '0' : '1';
    }
    return bits;
  };
  std::string a = pattern(42);
  EXPECT_EQ(a, pattern(42)) << "same seed must replay the identical stream";
  EXPECT_NE(a, pattern(43)) << "different seeds should diverge";
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultRegistry, PidAndSysnoFiltersGate) {
  FaultRegistry faults;
  FaultConfig cfg = AlwaysFault(Errno::kEIO);
  cfg.pid = 7;
  cfg.sysno = 2;
  ASSERT_TRUE(faults.Configure(FaultSite::kSyscallEntry, cfg).ok());
  faults.SwapContext(FaultContext{6, 2});
  EXPECT_EQ(faults.Evaluate(FaultSite::kSyscallEntry), Errno::kOk);
  faults.SwapContext(FaultContext{7, 3});
  EXPECT_EQ(faults.Evaluate(FaultSite::kSyscallEntry), Errno::kOk);
  faults.SwapContext(FaultContext{7, 2});
  EXPECT_EQ(faults.Evaluate(FaultSite::kSyscallEntry), Errno::kEIO);
}

// --- Directive grammar --------------------------------------------------------

TEST(FaultDirectives, ParsesFullDirective) {
  auto parsed = ParseFaultDirectives(
      "# comment\n"
      "site=lsm_hook error=EIO prob=1/4 interval=2 times=5 pid=9 syscall=mount "
      "hook=sb_mount seed=77\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  const FaultDirective& d = parsed.value()[0];
  EXPECT_EQ(d.kind, FaultDirective::Kind::kConfigure);
  EXPECT_EQ(d.site, FaultSite::kLsmHook);
  EXPECT_EQ(d.config.error, Errno::kEIO);
  EXPECT_EQ(d.config.prob_num, 1u);
  EXPECT_EQ(d.config.prob_den, 4u);
  EXPECT_EQ(d.config.interval, 2u);
  EXPECT_EQ(d.config.times, 5u);
  EXPECT_EQ(d.config.pid, 9);
  EXPECT_GE(d.config.sysno, 0);
  EXPECT_EQ(d.config.hook, 1);  // sb_mount
  EXPECT_EQ(d.config.seed, 77u);
}

TEST(FaultDirectives, RejectsMalformedLines) {
  for (const char* bad :
       {"site=nosuch error=EIO", "site=fd_alloc", "site=fd_alloc error=NOPE",
        "site=fd_alloc error=EIO prob=2/1", "site=fd_alloc error=EIO interval=0",
        "site=fd_alloc error=EIO syscall=frobnicate", "off", "reset now",
        "site=fd_alloc error=EIO bogus=1"}) {
    auto parsed = ParseFaultDirectives(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.error().code(), Errno::kEINVAL) << bad;
  }
}

TEST(FaultDirectives, ReadBodyRewritesVerbatim) {
  // The control file's read side must be a valid write: snapshot-and-replay.
  FaultRegistry faults;
  FaultConfig cfg = AlwaysFault(Errno::kENOSPC, /*times=*/3);
  cfg.prob_num = 1;
  cfg.prob_den = 8;
  cfg.seed = 1234;
  cfg.sysno = 2;
  ASSERT_TRUE(faults.Configure(FaultSite::kVfsBlockAlloc, cfg).ok());
  std::string body = faults.Format();
  auto parsed = ParseFaultDirectives(body);
  ASSERT_TRUE(parsed.ok()) << body << parsed.error().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  const FaultConfig& round = parsed.value()[0].config;
  EXPECT_EQ(round.error, Errno::kENOSPC);
  EXPECT_EQ(round.prob_num, 1u);
  EXPECT_EQ(round.prob_den, 8u);
  EXPECT_EQ(round.times, 3u);
  EXPECT_EQ(round.seed, 1234u);
  EXPECT_EQ(round.sysno, 2);
}

// --- Resource limits (satellite 1) -------------------------------------------

TEST(ResourceLimits, GetAndSetRlimitThroughGate) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  auto lim = k.GetRlimit(alice, Kernel::kRlimitNofile);
  ASSERT_TRUE(lim.ok());
  EXPECT_EQ(lim.value().cur, kDefaultNofileCur);
  EXPECT_EQ(lim.value().max, kDefaultNofileMax);
  EXPECT_EQ(k.GetRlimit(alice, 99).error().code(), Errno::kEINVAL);

  // Lowering is free; cur > max is EINVAL; raising max needs CAP_SYS_RESOURCE.
  EXPECT_TRUE(k.SetRlimit(alice, Kernel::kRlimitNofile, RLimit{16, 64}).ok());
  EXPECT_EQ(k.SetRlimit(alice, Kernel::kRlimitNofile, RLimit{65, 64}).error().code(),
            Errno::kEINVAL);
  EXPECT_EQ(k.SetRlimit(alice, Kernel::kRlimitNofile, RLimit{16, 128}).error().code(),
            Errno::kEPERM);
  Task& root = sys.Login("root");
  EXPECT_TRUE(k.SetRlimit(root, Kernel::kRlimitNofile, RLimit{512, 8192}).ok());
}

TEST(ResourceLimits, EmfileWhenPerTaskLimitExhausted) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  size_t base = alice.fds.size();
  ASSERT_TRUE(k.SetRlimit(alice, Kernel::kRlimitNofile, RLimit{base + 2, 64}).ok());
  auto fd1 = k.Open(alice, "/etc/passwd", kORdOnly);
  auto fd2 = k.Open(alice, "/etc/passwd", kORdOnly);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  auto fd3 = k.Open(alice, "/etc/passwd", kORdOnly);
  ASSERT_FALSE(fd3.ok());
  EXPECT_EQ(fd3.error().code(), Errno::kEMFILE);
  EXPECT_STREQ(ErrnoName(fd3.error().code()), "EMFILE");
  // Closing one slot frees the budget.
  ASSERT_TRUE(k.Close(alice, fd1.value()).ok());
  auto fd4 = k.Open(alice, "/etc/passwd", kORdOnly);
  EXPECT_TRUE(fd4.ok());
  (void)k.Close(alice, fd2.value());
  (void)k.Close(alice, fd4.value());
}

TEST(ResourceLimits, EnfileWhenSystemTableExhausted) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  k.set_file_max(k.OpenFileCount() + 1);
  auto fd1 = k.Open(alice, "/etc/passwd", kORdOnly);
  ASSERT_TRUE(fd1.ok());
  auto fd2 = k.Open(alice, "/etc/passwd", kORdOnly);
  ASSERT_FALSE(fd2.ok());
  EXPECT_EQ(fd2.error().code(), Errno::kENFILE);
  EXPECT_STREQ(ErrnoName(fd2.error().code()), "ENFILE");
  (void)k.Close(alice, fd1.value());
}

TEST(ResourceLimits, EnospcWhenBlockQuotaExhausted) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  k.vfs().set_block_quota(k.vfs().bytes_used() + 8);
  EXPECT_TRUE(k.WriteWholeFile(alice, "/tmp/small", "1234").ok());
  auto big = k.WriteWholeFile(alice, "/tmp/big", "this payload exceeds the quota");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.error().code(), Errno::kENOSPC);
  EXPECT_STREQ(ErrnoName(big.error().code()), "ENOSPC");
  // Shrinking a file releases charge: overwrite small with less data.
  EXPECT_TRUE(k.WriteWholeFile(alice, "/tmp/small", "12").ok());
  EXPECT_TRUE(k.vfs().AuditBlockAccounting().ok());
}

TEST(ResourceLimits, EnomemViaVnodeFaultSite) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  ASSERT_TRUE(
      k.faults().Configure(FaultSite::kVfsVnodeAlloc, AlwaysFault(Errno::kENOMEM, 1)).ok());
  auto fd = k.Open(alice, "/tmp/nofile", kOCreat | kOWrOnly, 0644);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().code(), Errno::kENOMEM);
  EXPECT_STREQ(ErrnoName(fd.error().code()), "ENOMEM");
  EXPECT_FALSE(k.vfs().Resolve("/tmp/nofile").ok());
}

TEST(ResourceLimits, RlimitInheritedAcrossForkKeptAcrossExec) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  ASSERT_TRUE(k.SetRlimit(alice, Kernel::kRlimitNofile, RLimit{32, 64}).ok());
  ASSERT_TRUE(k.InstallBinary("/usr/bin/limprobe", 0755, kRootUid, kRootGid,
                              [](ProcessContext& ctx) {
                                auto lim = ctx.kernel.GetRlimit(ctx.task,
                                                                Kernel::kRlimitNofile);
                                return lim.ok() ? static_cast<int>(lim.value().cur) : -1;
                              })
                  .ok());
  auto status = k.Spawn(alice, "/usr/bin/limprobe", {"limprobe"}, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 32);
}

// --- Proc-write atomicity (satellite 2) --------------------------------------

TEST(ProcAtomicity, FailedWritesLeaveEveryControlFileByteIdentical) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  struct Case {
    const char* file;
    const char* garbage;
  };
  for (const Case& c : std::vector<Case>{
           {"/proc/protego/mounts", "this is : not an fstab line at all"},
           {"/proc/protego/ports", "not-a-port /bin/x notauid"},
           {"/proc/protego/sudoers", "Totally_Bogus_Directive ???"},
           {"/proc/protego/userdb", "stray content before any section"},
           {"/proc/protego/fault_inject", "site=fd_alloc error=EIO\nsite=bogus error=EIO"},
       }) {
    std::string before = k.ReadWholeFile(root, c.file).value_or("<unreadable>");
    uint64_t gen_before = k.lsm().policy_generation();
    auto w = k.WriteWholeFile(root, c.file, c.garbage);
    ASSERT_FALSE(w.ok()) << c.file << " accepted garbage";
    EXPECT_EQ(w.error().code(), Errno::kEINVAL) << c.file;
    EXPECT_EQ(k.ReadWholeFile(root, c.file).value_or("<unreadable>"), before) << c.file;
    EXPECT_EQ(k.lsm().policy_generation(), gen_before) << c.file;
  }
  // The registry specifically: the partially-valid fault_inject write above
  // must not have enabled its valid first line.
  EXPECT_FALSE(k.faults().any_enabled());
}

TEST(ProcAtomicity, TraceFilterWriteRejectedWithoutSideEffects) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/trace", "?pid=42").ok());
  ASSERT_EQ(k.tracer().read_filter().pid, 42);
  auto w = k.WriteWholeFile(root, "/proc/protego/trace", "?pid=42&bogus=1");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error().code(), Errno::kEINVAL);
  EXPECT_EQ(k.tracer().read_filter().pid, 42) << "failed write clobbered the filter";
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/trace", "?").ok());
  EXPECT_FALSE(k.tracer().read_filter().active());
}

TEST(ProcAtomicity, FaultInjectRoundTripsAndAppliesAtomically) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  // The fd_alloc directive carries a non-matching pid filter: an unfiltered
  // one would (correctly) fire on the control file's own open.
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/fault_inject",
                               "site=fd_alloc error=EMFILE times=2 seed=5 pid=9999\n"
                               "site=netfilter_eval error=EIO prob=1/4\n")
                  .ok());
  EXPECT_TRUE(k.faults().config(FaultSite::kFdAlloc).enabled);
  EXPECT_TRUE(k.faults().config(FaultSite::kNetfilterEval).enabled);
  std::string body = k.ReadWholeFile(root, "/proc/protego/fault_inject").value_or("");
  // Snapshot-replay: write the read body back verbatim.
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/fault_inject", body).ok());
  EXPECT_EQ(k.ReadWholeFile(root, "/proc/protego/fault_inject").value_or("!"), body);
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/fault_inject", "reset\n").ok());
  EXPECT_FALSE(k.faults().any_enabled());
  EXPECT_EQ(k.faults().injected(FaultSite::kFdAlloc), 0u);
}

// --- Utilities under injected EIO (satellite 3) ------------------------------

// Each utility's config read dies with EIO: nonzero exit, a diagnostic on
// stderr, no partial state, and no secret material in the transcript.
TEST(UtilityFaults, MountFailsCleanlyOnConfigReadError) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Kernel& k = sys.kernel();
    Task& alice = sys.Login("alice");
    FaultConfig cfg = AlwaysFault(Errno::kEIO, 1);
    cfg.sysno = static_cast<int>(Sysno::kOpen);
    ASSERT_TRUE(k.faults().Configure(FaultSite::kSyscallEntry, cfg).ok());
    auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
    EXPECT_FALSE(out.err.empty()) << SimModeName(mode) << " no diagnostic";
    EXPECT_EQ(k.vfs().FindMount("/media/cdrom"), nullptr)
        << SimModeName(mode) << " partial mount state";
    EXPECT_EQ(k.faults().injected(FaultSite::kSyscallEntry), 1u);
  }
}

TEST(UtilityFaults, PasswdFailsCleanlyAndChangesNothing) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Kernel& k = sys.kernel();
    Task& root = sys.Login("root");
    Task& alice = sys.Login("alice");
    const char* db = mode == SimMode::kProtego ? "/etc/shadows/alice" : "/etc/shadow";
    std::string before = k.ReadWholeFile(root, db).value_or("<gone>");
    // Unlimited EIO on every open: whichever config read passwd reaches
    // first (lock file, shadow database, shadow fragment) dies.
    FaultConfig cfg = AlwaysFault(Errno::kEIO);
    cfg.sysno = static_cast<int>(Sysno::kOpen);
    ASSERT_TRUE(k.faults().Configure(FaultSite::kSyscallEntry, cfg).ok());
    alice.terminal->QueueInput("alicepw");
    alice.terminal->QueueInput("newsecret");
    alice.terminal->QueueInput("newsecret");
    auto out = sys.RunCapture(alice, "/usr/bin/passwd", {"passwd"});
    k.faults().Reset();
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
    EXPECT_FALSE(out.err.empty()) << SimModeName(mode) << " no diagnostic";
    EXPECT_EQ(out.out.find("$sim$"), std::string::npos) << "hash leaked to stdout";
    EXPECT_EQ(out.err.find("$sim$"), std::string::npos) << "hash leaked to stderr";
    EXPECT_EQ(k.ReadWholeFile(root, db).value_or("<gone>"), before)
        << SimModeName(mode) << " credential db changed on failure";
  }
}

TEST(UtilityFaults, PingFailsCleanlyOnSocketError) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Kernel& k = sys.kernel();
    Task& alice = sys.Login("alice");
    FaultConfig cfg = AlwaysFault(Errno::kEIO, 1);
    cfg.sysno = static_cast<int>(Sysno::kSocket);
    ASSERT_TRUE(k.faults().Configure(FaultSite::kSyscallEntry, cfg).ok());
    auto out = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
    EXPECT_FALSE(out.err.empty()) << SimModeName(mode) << " no diagnostic";
    EXPECT_EQ(k.faults().injected(FaultSite::kSyscallEntry), 1u);
  }
}

TEST(UtilityFaults, SudoFailsClosedOnConfigReadError) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Kernel& k = sys.kernel();
    Task& alice = sys.Login("alice");
    // Stock sudo's policy lives in config files (EIO the reads); Protego
    // sudo's policy lives in the kernel, so the config-read analog is the
    // auth-service round-trip.
    if (mode == SimMode::kLinux) {
      FaultConfig cfg = AlwaysFault(Errno::kEIO);
      cfg.sysno = static_cast<int>(Sysno::kOpen);
      ASSERT_TRUE(k.faults().Configure(FaultSite::kSyscallEntry, cfg).ok());
    } else {
      ASSERT_TRUE(
          k.faults().Configure(FaultSite::kAuthRoundTrip, AlwaysFault(Errno::kEIO)).ok());
    }
    alice.terminal->QueueInput("alicepw");
    auto out = sys.RunCapture(alice, "/usr/bin/sudo", {"sudo", "/usr/bin/id"});
    k.faults().Reset();
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
    EXPECT_EQ(out.out.find("uid=0"), std::string::npos)
        << SimModeName(mode) << " command ran as root despite failure";
    EXPECT_EQ(out.out.find("$sim$"), std::string::npos);
    EXPECT_EQ(out.err.find("$sim$"), std::string::npos);
    EXPECT_EQ(alice.cred.euid, 1000u) << "session retained privilege";
  }
}

// --- Transactional swap rollback (tentpole b) --------------------------------

TEST(SwapRollback, FaultMidSwapRestoresRawTableAndGeneration) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  ASSERT_NE(sys.lsm(), nullptr);
  std::vector<FstabEntry> before = sys.lsm()->mount_policy();
  uint64_t gen = k.lsm().policy_generation();

  // Fault at the start boundary.
  ASSERT_TRUE(
      k.faults().Configure(FaultSite::kPolicyCompile, AlwaysFault(Errno::kENOMEM, 1)).ok());
  auto r1 = sys.lsm()->SetMountPolicy({});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code(), Errno::kENOMEM);
  EXPECT_EQ(sys.lsm()->mount_policy().size(), before.size()) << "raw table not rolled back";
  EXPECT_EQ(k.lsm().policy_generation(), gen);

  // Fault at the mid-swap boundary (second Check point): interval=2 skips
  // the start check and fires on the next evaluation.
  FaultConfig mid = AlwaysFault(Errno::kENOMEM, 1);
  mid.interval = 2;
  ASSERT_TRUE(k.faults().Configure(FaultSite::kPolicyCompile, mid).ok());
  auto r2 = sys.lsm()->SetMountPolicy({});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(sys.lsm()->mount_policy().size(), before.size());
  EXPECT_EQ(k.lsm().policy_generation(), gen);

  // With the budget exhausted the same swap goes through.
  k.faults().Reset();
  ASSERT_TRUE(sys.lsm()->SetMountPolicy(before).ok());
  EXPECT_EQ(k.lsm().policy_generation(), gen + 1);
}

TEST(SwapRollback, DisabledGateHasNoSyscallOverheadCounters) {
  // With no site enabled the registry must never record an evaluation: the
  // any_enabled() guard keeps the hot path to one load+branch.
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  for (int i = 0; i < 32; ++i) {
    auto fd = k.Open(alice, "/etc/passwd", kORdOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(k.Close(alice, fd.value()).ok());
  }
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    EXPECT_EQ(k.faults().evaluations(static_cast<FaultSite>(i)), 0u);
  }
}

// --- The sweep (tentpole c + acceptance) -------------------------------------

TEST(FaultSweep, EverySiteInjectsCleanlyAndReplays) {
  FaultSweepReport report = RunFaultSweep();
  ASSERT_EQ(report.sites.size(), kFaultSiteCount)
      << "sweep must exercise every registered site";
  EXPECT_TRUE(report.all_ok()) << report.Format();
  for (const FaultSiteAudit& site : report.sites) {
    EXPECT_GE(site.injections, 1u) << FaultSiteName(site.site) << " never fired";
  }
}

}  // namespace
}  // namespace protego
