// §3.2 reproduced: a setcap hardening pass helps the network utilities but
// leaves "capabilities tantamount to root" in the mount/delegation/passwd/X
// families — only Protego deprivileges all of them.

#include <gtest/gtest.h>

#include "src/study/cves.h"

namespace protego {
namespace {

ExploitOutcome RunOn(SimMode mode, const std::string& cve_id) {
  SimSystem sys(mode);
  for (const CveEntry& entry : CveCorpus()) {
    if (entry.cve_id == cve_id) {
      return RunExploit(sys, entry);
    }
  }
  ADD_FAILURE() << "no such CVE in corpus: " << cve_id;
  return {};
}

TEST(SetcapMode, BinariesCarryCapsNotTheSetuidBit) {
  SimSystem sys(SimMode::kSetcap);
  Task& alice = sys.Login("alice");
  auto st = sys.kernel().Stat(alice, "/bin/ping");
  EXPECT_TRUE((st.value().mode & kSetUidBit) == 0);
  // ping still works: the file capability grants CAP_NET_RAW at exec.
  auto out = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});
  EXPECT_EQ(out.exit_code, 0) << out.err;
}

TEST(SetcapMode, NetworkUtilitiesNoLongerEscalate) {
  // CAP_NET_RAW alone cannot touch files, ports, uids, mounts, or routes.
  for (const char* cve : {"CVE-2000-1213", "CVE-2005-2071", "CVE-2002-0497"}) {
    ExploitOutcome outcome = RunOn(SimMode::kSetcap, cve);
    EXPECT_TRUE(outcome.triggered) << cve;
    EXPECT_FALSE(outcome.escalated) << cve << " escalated under setcap";
  }
}

TEST(SetcapMode, DelegationUtilitiesStillEscalate) {
  // CAP_SETUID is root by another name: the hijacked process just calls
  // setuid(0).
  for (const char* cve : {"CVE-2002-0184", "CVE-2000-0996", "CVE-2004-1328",
                          "CVE-2011-1485"}) {
    ExploitOutcome outcome = RunOn(SimMode::kSetcap, cve);
    EXPECT_TRUE(outcome.triggered) << cve;
    EXPECT_TRUE(outcome.escalated) << cve << " should escalate under setcap";
  }
}

TEST(SetcapMode, SysAdminUtilitiesStillEscalate) {
  // CAP_SYS_ADMIN ("the new root") lets the hijacked mount graft a
  // filesystem over /etc.
  ExploitOutcome mount_cve = RunOn(SimMode::kSetcap, "CVE-2006-2183");
  EXPECT_TRUE(mount_cve.escalated);
  bool via_mount = false;
  for (const std::string& action : mount_cve.succeeded_actions) {
    via_mount |= action == "mount_over_etc";
  }
  EXPECT_TRUE(via_mount);
}

TEST(SetcapMode, PasswdAndXEscalateViaDacOverride) {
  EXPECT_TRUE(RunOn(SimMode::kSetcap, "CVE-2006-3378").escalated);  // passwd
  EXPECT_TRUE(RunOn(SimMode::kSetcap, "CVE-2002-0517").escalated);  // X
}

TEST(SetcapMode, PppdEscalatesViaNetAdmin) {
  // Not in the 40-CVE corpus, so exercised directly: a hijacked pppd with
  // CAP_NET_ADMIN can install a hostile default route.
  SimSystem sys(SimMode::kSetcap);
  Task& alice = sys.Login("alice");
  auto out = sys.RunCapture(alice, "/usr/sbin/pppd",
                            {"pppd", "--exploit=CVE-SIM-PPPD"});
  (void)out;  // pppd has no trigger for that id; demonstrate via payload caps
  // Directly: a task with pppd's file caps can rewrite routing.
  Task& hijacked = sys.kernel().CreateTask("pppd", Cred::ForUser(1000, 1000), nullptr);
  hijacked.cred.effective = CapSet::Of({Capability::kNetAdmin});
  auto fd = sys.kernel().SocketCall(hijacked, kAfInet, kSockDgram, 0);
  EXPECT_TRUE(
      sys.kernel().Ioctl(hijacked, fd.value(), kSiocAddRt, "0.0.0.0/0 10.66.66.66 eth0").ok());
}

TEST(SetcapMode, ProtegoStillBeatsSetcapOnEveryCve) {
  // For every CVE that still escalates under setcap, Protego does not.
  SimSystem setcap_sys(SimMode::kSetcap);
  SimSystem protego_sys(SimMode::kProtego);
  int setcap_escalations = 0;
  for (const CveEntry& entry : CveCorpus()) {
    ExploitOutcome under_setcap = RunExploit(setcap_sys, entry);
    if (under_setcap.escalated) {
      ++setcap_escalations;
      ExploitOutcome under_protego = RunExploit(protego_sys, entry);
      EXPECT_FALSE(under_protego.escalated) << entry.cve_id;
    }
  }
  // The paper's point in one number: setcap leaves a substantial fraction
  // of the historical escalations alive.
  EXPECT_GT(setcap_escalations, 15);
  EXPECT_LT(setcap_escalations, 40);
}

}  // namespace
}  // namespace protego
