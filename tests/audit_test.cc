// Tests for the kernel audit ring and its /proc/protego/audit export.

#include <gtest/gtest.h>

#include "src/sim/system.h"

namespace protego {
namespace {

TEST(Audit, RecordsDenialsAndTransitions) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  size_t before = k.audit_log().size();

  // A policy-allowed user mount and a refused one both leave traces.
  Task& alice = sys.Login("alice");
  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  Task& bob = sys.Login("bob");
  bob.exe_path = "/usr/sbin/eximd";
  auto fd = k.SocketCall(bob, kAfInet, kSockStream, 0);
  (void)k.BindCall(bob, fd.value(), 25);  // denied: wrong uid for the allocation

  ASSERT_GT(k.audit_log().size(), before);
  std::string joined;
  for (const std::string& line : k.audit_log()) {
    joined += line + "\n";
  }
  EXPECT_NE(joined.find("user mount /dev/cdrom"), std::string::npos);
  EXPECT_NE(joined.find("bind(25) denied"), std::string::npos);
}

TEST(Audit, ProcFileIsRootOnlyAndMatchesRing) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  (void)k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
  EXPECT_EQ(k.ReadWholeFile(alice, "/proc/protego/audit").code(), Errno::kEACCES);
  Task& root = sys.Login("root");
  auto content = k.ReadWholeFile(root, "/proc/protego/audit");
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content.value().find("user mount /dev/cdrom"), std::string::npos);
  // One line per ring record.
  size_t lines = 0;
  for (char c : content.value()) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, k.audit_log().size());
}

TEST(Audit, RingIsBounded) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  for (int i = 0; i < 600; ++i) {
    k.Audit("filler " + std::to_string(i));
  }
  EXPECT_EQ(k.audit_log().size(), 512u);
  EXPECT_EQ(k.audit_log().back(), "filler 599");
  EXPECT_EQ(k.audit_log().front(), "filler 88");
}

}  // namespace
}  // namespace protego
