// Tests for the deterministic concurrency subsystem (src/conc): token
// hand-off, schedule exploration, blocking/deadlock semantics, flock, and
// cross-task policy-swap visibility at yield points.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/conc/explore.h"
#include "src/conc/scheduler.h"
#include "src/sim/system.h"

namespace protego {
namespace {

using conc::DetScheduler;
using conc::ExploreMode;
using conc::ExploreOptions;
using conc::ExploreResult;
using conc::SchedDecision;
using conc::SchedMode;

// --- Plain two-task scenario on a bare kernel --------------------------------
//
// Each task performs exactly `kSyscallsPerTask` getpid() calls, so each has
// kSyscallsPerTask + 1 execution quanta. Two tasks of 4 quanta interleave in
// C(8,4) = 70 distinct ways — the exact number bounded-exhaustive
// enumeration must produce.
constexpr int kSyscallsPerTask = 3;

class TwoTaskRun : public conc::ScenarioRun {
 public:
  Kernel& kernel() override { return kernel_; }

  void RegisterTasks(TaskScheduler& sched) override {
    Task& a = kernel_.CreateTask("taska", Cred::ForUser(1000, 1000), nullptr);
    Task& b = kernel_.CreateTask("taskb", Cred::ForUser(1001, 1001), nullptr);
    sched.StartTask(a.pid, [this, &a] {
      for (int i = 0; i < kSyscallsPerTask; ++i) {
        (void)kernel_.GetPid(a);
      }
    });
    sched.StartTask(b.pid, [this, &b] {
      for (int i = 0; i < kSyscallsPerTask; ++i) {
        (void)kernel_.GetPid(b);
      }
    });
  }

  std::optional<std::string> CheckInvariant() override { return std::nullopt; }

 private:
  Kernel kernel_;
};

conc::ScenarioFactory TwoTaskFactory() {
  return [] { return std::make_unique<TwoTaskRun>(); };
}

TEST(ConcScheduler, RoundRobinRunsAllTasksToCompletion) {
  auto run = TwoTaskFactory()();
  DetScheduler sched;
  run->kernel().set_scheduler(&sched);
  run->RegisterTasks(sched);
  sched.Run();
  run->kernel().set_scheduler(nullptr);

  // Round-robin alternates at every yield: both pids appear throughout.
  ASSERT_FALSE(sched.decisions().empty());
  std::set<int> scheduled;
  for (const SchedDecision& d : sched.decisions()) {
    scheduled.insert(d.runnable[d.chosen_index]);
  }
  EXPECT_EQ(scheduled.size(), 2u);
  EXPECT_GT(sched.steps(), 2u);  // real hand-offs happened
}

TEST(ConcScheduler, SameSeedReplaysIdenticalChoices) {
  std::vector<std::vector<uint32_t>> executed;
  for (int i = 0; i < 3; ++i) {
    auto run = TwoTaskFactory()();
    DetScheduler sched;
    sched.set_mode(SchedMode::kRandom);
    sched.set_seed(0xfeedULL);
    run->kernel().set_scheduler(&sched);
    run->RegisterTasks(sched);
    sched.Run();
    run->kernel().set_scheduler(nullptr);
    executed.push_back(sched.executed_choices());
  }
  ASSERT_FALSE(executed[0].empty());
  EXPECT_EQ(executed[0], executed[1]);
  EXPECT_EQ(executed[0], executed[2]);
}

TEST(ConcScheduler, DifferentSeedsExploreDifferentSchedules) {
  std::set<std::vector<uint32_t>> distinct;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto run = TwoTaskFactory()();
    DetScheduler sched;
    sched.set_mode(SchedMode::kRandom);
    sched.set_seed(seed);
    run->kernel().set_scheduler(&sched);
    run->RegisterTasks(sched);
    sched.Run();
    run->kernel().set_scheduler(nullptr);
    distinct.insert(sched.executed_choices());
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ConcScheduler, ExhaustiveEnumeratesAllSeventyInterleavings) {
  // Two tasks x (3 syscalls + final quantum) = C(8,4) = 70 interleavings.
  ExploreOptions opt;
  opt.mode = ExploreMode::kExhaustive;
  opt.preemption_bound = 100;  // effectively unbounded
  opt.max_schedules = 10000;
  ExploreResult res = conc::Explore(TwoTaskFactory(), opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation_found);
  EXPECT_EQ(res.schedules_run, 70u);
}

TEST(ConcScheduler, PreemptionBoundZeroYieldsOnlyNonPreemptiveSchedules) {
  // With no preemptions allowed, a task runs until it exits: A-then-B and
  // B-then-A are the only schedules.
  ExploreOptions opt;
  opt.mode = ExploreMode::kExhaustive;
  opt.preemption_bound = 0;
  ExploreResult res = conc::Explore(TwoTaskFactory(), opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.schedules_run, 2u);
}

TEST(ConcScheduler, ContextSwitchTracepointRecordsHandoffs) {
  auto run = TwoTaskFactory()();
  Tracer& tracer = run->kernel().tracer();
  DetScheduler sched(&tracer);
  run->kernel().set_scheduler(&sched);
  run->RegisterTasks(sched);
  sched.Run();
  run->kernel().set_scheduler(nullptr);

  uint64_t switches = 0;
  for (const TraceEvent& ev : tracer.Snapshot()) {
    if (ev.tp == TracepointId::kContextSwitch) {
      ++switches;
    }
  }
  EXPECT_EQ(switches, sched.steps());
  EXPECT_GT(switches, 0u);
}

// --- SpawnAsync / WaitPid ----------------------------------------------------

// Installs a tiny binary that prints its first argument (the userland has
// no /bin/echo).
void InstallSay(Kernel& k) {
  ASSERT_TRUE(k.InstallBinary("/usr/bin/say", 0755, kRootUid, kRootGid,
                              [](ProcessContext& ctx) {
                                ctx.Out(ctx.argv.size() > 1 ? ctx.argv[1] : "");
                                ctx.Out("\n");
                                return 0;
                              })
                  .ok());
}

TEST(ConcSpawn, SpawnAsyncRequiresScheduler) {
  SimSystem sys(SimMode::kLinux);
  InstallSay(sys.kernel());
  Task& session = sys.Login("alice");
  auto r = sys.kernel().SpawnAsync(session, "/usr/bin/say", {"say"}, {});
  EXPECT_EQ(r.code(), Errno::kENOSYS);
}

TEST(ConcSpawn, SpawnAsyncChildrenInterleaveAndAreReaped) {
  SimSystem sys(SimMode::kLinux);
  InstallSay(sys.kernel());
  Task& session = sys.Login("alice");
  DetScheduler sched;
  sys.kernel().set_scheduler(&sched);
  auto a = sys.kernel().SpawnAsync(session, "/usr/bin/say", {"say", "one"}, {});
  auto b = sys.kernel().SpawnAsync(session, "/usr/bin/say", {"say", "two"}, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  sched.Run();
  // Children have exited; WaitPid collects their status and output without
  // blocking.
  auto sa = sys.kernel().WaitPid(session, a.value());
  auto sb = sys.kernel().WaitPid(session, b.value());
  sys.kernel().set_scheduler(nullptr);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sa.value(), 0);
  EXPECT_EQ(sb.value(), 0);
  EXPECT_NE(session.stdout_buf.find("one"), std::string::npos);
  EXPECT_NE(session.stdout_buf.find("two"), std::string::npos);
  // Reaped: a second wait reports no such child.
  EXPECT_EQ(sys.kernel().WaitPid(session, a.value()).code(), Errno::kECHILD);
}

TEST(ConcSpawn, WaitPidDrivesPendingChildrenWhenCalledBeforeRun) {
  SimSystem sys(SimMode::kLinux);
  InstallSay(sys.kernel());
  Task& session = sys.Login("alice");
  DetScheduler sched;
  sys.kernel().set_scheduler(&sched);
  auto a = sys.kernel().SpawnAsync(session, "/usr/bin/say", {"say"}, {});
  ASSERT_TRUE(a.ok());
  // No explicit Run(): WaitPid on the driving thread runs pending units.
  auto st = sys.kernel().WaitPid(session, a.value());
  sys.kernel().set_scheduler(nullptr);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value(), 0);
}

// --- flock -------------------------------------------------------------------

class FlockTest : public ::testing::Test {
 protected:
  FlockTest() {
    Must(kernel_.vfs().CreateFile("/f1", 0666, 0, 0, "one"));
    Must(kernel_.vfs().CreateFile("/f2", 0666, 0, 0, "two"));
  }
  template <typename T>
  static void Must(Result<T> r) {
    ASSERT_TRUE(r.ok()) << r.error().ToString();
  }
  int OpenOrDie(Task& t, const std::string& path) {
    auto fd = kernel_.Open(t, path, kORdOnly, 0);
    EXPECT_TRUE(fd.ok());
    return fd.value_or(-1);
  }
  Kernel kernel_;
};

TEST_F(FlockTest, ExclusiveConflictsAndNonblockingFails) {
  Task& a = kernel_.CreateTask("a", Cred::ForUser(1000, 1000), nullptr);
  Task& b = kernel_.CreateTask("b", Cred::ForUser(1001, 1001), nullptr);
  int fda = OpenOrDie(a, "/f1");
  int fdb = OpenOrDie(b, "/f1");

  ASSERT_TRUE(kernel_.Flock(a, fda, kLockEx).ok());
  EXPECT_EQ(kernel_.Flock(b, fdb, kLockEx | kLockNb).code(), Errno::kEAGAIN);
  EXPECT_EQ(kernel_.Flock(b, fdb, kLockSh | kLockNb).code(), Errno::kEAGAIN);
  // Without a scheduler a blocking request can never be satisfied.
  EXPECT_EQ(kernel_.Flock(b, fdb, kLockEx).code(), Errno::kEDEADLK);

  ASSERT_TRUE(kernel_.Flock(a, fda, kLockUn).ok());
  EXPECT_TRUE(kernel_.Flock(b, fdb, kLockEx | kLockNb).ok());
}

TEST_F(FlockTest, SharedLocksCoexistAndBlockWriters) {
  Task& a = kernel_.CreateTask("a", Cred::ForUser(1000, 1000), nullptr);
  Task& b = kernel_.CreateTask("b", Cred::ForUser(1001, 1001), nullptr);
  Task& c = kernel_.CreateTask("c", Cred::ForUser(1002, 1002), nullptr);
  int fda = OpenOrDie(a, "/f1");
  int fdb = OpenOrDie(b, "/f1");
  int fdc = OpenOrDie(c, "/f1");

  ASSERT_TRUE(kernel_.Flock(a, fda, kLockSh).ok());
  ASSERT_TRUE(kernel_.Flock(b, fdb, kLockSh).ok());
  EXPECT_EQ(kernel_.Flock(c, fdc, kLockEx | kLockNb).code(), Errno::kEAGAIN);
  ASSERT_TRUE(kernel_.Flock(a, fda, kLockUn).ok());
  EXPECT_EQ(kernel_.Flock(c, fdc, kLockEx | kLockNb).code(), Errno::kEAGAIN);
  ASSERT_TRUE(kernel_.Flock(b, fdb, kLockUn).ok());
  EXPECT_TRUE(kernel_.Flock(c, fdc, kLockEx | kLockNb).ok());
}

TEST_F(FlockTest, TaskExitReleasesHeldLocks) {
  Task& a = kernel_.CreateTask("a", Cred::ForUser(1000, 1000), nullptr);
  Task& b = kernel_.CreateTask("b", Cred::ForUser(1001, 1001), nullptr);
  int fda = OpenOrDie(a, "/f1");
  int fdb = OpenOrDie(b, "/f1");
  ASSERT_TRUE(kernel_.Flock(a, fda, kLockEx).ok());
  EXPECT_EQ(kernel_.Flock(b, fdb, kLockEx | kLockNb).code(), Errno::kEAGAIN);
  kernel_.ReapTask(a.pid);
  EXPECT_TRUE(kernel_.Flock(b, fdb, kLockEx | kLockNb).ok());
}

TEST_F(FlockTest, BlockedLockIsGrantedWhenHolderReleases) {
  Task& a = kernel_.CreateTask("a", Cred::ForUser(1000, 1000), nullptr);
  Task& b = kernel_.CreateTask("b", Cred::ForUser(1001, 1001), nullptr);
  int fda = OpenOrDie(a, "/f1");
  int fdb = OpenOrDie(b, "/f1");

  DetScheduler sched;
  kernel_.set_scheduler(&sched);
  Errno b_result = Errno::kEINVAL;
  sched.StartTask(a.pid, [&] {
    ASSERT_TRUE(kernel_.Flock(a, fda, kLockEx).ok());
    (void)kernel_.GetPid(a);  // yield while holding the lock
    ASSERT_TRUE(kernel_.Flock(a, fda, kLockUn).ok());
  });
  sched.StartTask(b.pid, [&] {
    // Blocks until A releases, then succeeds.
    b_result = kernel_.Flock(b, fdb, kLockEx).code();
  });
  sched.Run();
  kernel_.set_scheduler(nullptr);
  EXPECT_EQ(b_result, Errno::kOk);
}

TEST_F(FlockTest, AbbaDeadlockFailsOneTaskWithEdeadlkAndCompletes) {
  Task& a = kernel_.CreateTask("a", Cred::ForUser(1000, 1000), nullptr);
  Task& b = kernel_.CreateTask("b", Cred::ForUser(1001, 1001), nullptr);
  int fda1 = OpenOrDie(a, "/f1");
  int fda2 = OpenOrDie(a, "/f2");
  int fdb1 = OpenOrDie(b, "/f1");
  int fdb2 = OpenOrDie(b, "/f2");

  DetScheduler sched;
  kernel_.set_scheduler(&sched);
  Errno a_second = Errno::kEINVAL;
  Errno b_second = Errno::kEINVAL;
  sched.StartTask(a.pid, [&] {
    ASSERT_TRUE(kernel_.Flock(a, fda1, kLockEx).ok());
    (void)kernel_.GetPid(a);
    a_second = kernel_.Flock(a, fda2, kLockEx).code();
    (void)kernel_.Flock(a, fda2, kLockUn);
    (void)kernel_.Flock(a, fda1, kLockUn);
  });
  sched.StartTask(b.pid, [&] {
    ASSERT_TRUE(kernel_.Flock(b, fdb2, kLockEx).ok());
    (void)kernel_.GetPid(b);
    b_second = kernel_.Flock(b, fdb1, kLockEx).code();
    (void)kernel_.Flock(b, fdb1, kLockUn);
    (void)kernel_.Flock(b, fdb2, kLockUn);
  });
  sched.Run();  // must terminate — the deadlock is detected, not suffered
  kernel_.set_scheduler(nullptr);

  // Exactly one task loses the ABBA embrace with EDEADLK; after it backs
  // off (releasing its first lock), the other acquires both.
  bool a_deadlocked = a_second == Errno::kEDEADLK;
  bool b_deadlocked = b_second == Errno::kEDEADLK;
  EXPECT_TRUE(a_deadlocked != b_deadlocked)
      << "a=" << ErrnoName(a_second) << " b=" << ErrnoName(b_second);
  EXPECT_TRUE(a_second == Errno::kOk || b_second == Errno::kOk);
}

// --- Cross-task policy-swap visibility (per-task LSM decision cache) ---------

TEST(ConcPolicy, SwapByOneTaskInvalidatesPeerCacheAtNextYield) {
  // Task A (running as /usr/bin/reader) reads a root-only file via a
  // File_Delegate rule; the verdict lands in A's per-task decision cache.
  // Mid-interleaving, task B (root) swaps the policy to one without the
  // rule. A's very next open must observe the new policy generation — the
  // cached allow must not outlive the swap.
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  std::string original = k.ReadWholeFile(root, "/proc/protego/sudoers").value();
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/sudoers",
                               original + "File_Delegate /usr/bin/reader /etc/locked r\n")
                  .ok());
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/locked", "classified", false, 0600).ok());

  Task& a = k.CreateTask("reader", Cred::ForUser(1000, 1000), nullptr);
  a.exe_path = "/usr/bin/reader";
  Task& b = k.CreateTask("swapper", Cred::ForUser(0, 0), nullptr);
  b.exe_path = "/usr/bin/policyd";

  uint64_t generation_before = k.lsm().policy_generation();
  Errno read1 = Errno::kEINVAL;
  Errno read2 = Errno::kEINVAL;
  Errno read3 = Errno::kEINVAL;
  uint64_t generation_mid = 0;

  DetScheduler sched;
  k.set_scheduler(&sched);
  sched.StartTask(a.pid, [&] {
    read1 = k.ReadWholeFile(a, "/etc/locked").code();  // delegation allows
    read2 = k.ReadWholeFile(a, "/etc/locked").code();  // served by the cache
    read3 = k.ReadWholeFile(a, "/etc/locked").code();  // after B's swap: denied
  });
  sched.StartTask(b.pid, [&] {
    ASSERT_TRUE(k.WriteWholeFile(b, "/proc/protego/sudoers", original).ok());
    generation_mid = k.lsm().policy_generation();
  });
  // Fixed schedule: A completes read1 and read2 (each = open+read+close, 3
  // syscall-entry decisions), then B runs to completion, then A resumes.
  // Decision 0 is the initial dispatch; decisions 1-6 are A's first six
  // syscall entries; decision 7 (A's seventh entry — read3's open) switches
  // to B (index 1) and keeps choosing B until B exits, after which A is the
  // only runnable unit and every choice clamps back to it.
  sched.set_mode(SchedMode::kFixed);
  std::vector<uint32_t> choices(7, 0);
  choices.resize(40, 1);
  sched.set_choices(choices);
  sched.Run();
  k.set_scheduler(nullptr);

  EXPECT_EQ(read1, Errno::kOk);
  EXPECT_EQ(read2, Errno::kOk);
  EXPECT_EQ(read3, Errno::kEACCES);
  // The swap really happened mid-interleaving and bumped the generation the
  // cache entries were tagged with.
  EXPECT_GT(generation_mid, generation_before);
}

}  // namespace
}  // namespace protego
