// Tests for the iptables control path: rule grammar round-trips, the
// CAP_NET_ADMIN gate, live effect on traffic, and administrator workflow
// over the default Protego raw-socket rules.

#include <gtest/gtest.h>

#include "src/net/netfilter.h"
#include "src/protego/default_rules.h"
#include "src/sim/system.h"

namespace protego {
namespace {

TEST(NfRuleGrammar, RoundTripsEveryField) {
  const char* specs[] = {
      "chain=OUTPUT verdict=DROP",
      "chain=INPUT proto=udp dport=53:53 verdict=ACCEPT",
      "chain=OUTPUT proto=icmp icmptype=8 raw=1 verdict=ACCEPT comment=ping",
      "chain=OUTPUT dport=33434: raw=1 verdict=ACCEPT",
      "chain=OUTPUT spoofed-src=1 raw=1 verdict=DROP comment=antispoof",
      "chain=OUTPUT uid=1000 proto=tcp verdict=DROP",
  };
  for (const char* spec : specs) {
    auto rule = ParseNfRule(spec);
    ASSERT_TRUE(rule.ok()) << spec << ": " << rule.error().ToString();
    auto again = ParseNfRule(SerializeNfRule(rule.value()));
    ASSERT_TRUE(again.ok()) << SerializeNfRule(rule.value());
    EXPECT_EQ(SerializeNfRule(again.value()), SerializeNfRule(rule.value()));
  }
}

TEST(NfRuleGrammar, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseNfRule("").ok());                           // no chain/verdict
  EXPECT_FALSE(ParseNfRule("chain=OUTPUT").ok());               // no verdict
  EXPECT_FALSE(ParseNfRule("chain=SIDEWAYS verdict=DROP").ok());
  EXPECT_FALSE(ParseNfRule("chain=OUTPUT verdict=MAYBE").ok());
  EXPECT_FALSE(ParseNfRule("chain=OUTPUT dport=99999 verdict=DROP").ok());
  EXPECT_FALSE(ParseNfRule("chain=OUTPUT nonsense verdict=DROP").ok());
  EXPECT_FALSE(ParseNfRule("chain=OUTPUT color=red verdict=DROP").ok());
}

TEST(NfRuleGrammar, DefaultRulesSurviveTheWire) {
  // Every default Protego rule serializes and re-parses to an equivalent
  // rule (so `iptables -L` output is valid `-A` input).
  Netfilter nf;
  InstallDefaultRawSocketRules(&nf);
  for (const NfRule& rule : nf.rules()) {
    auto round = ParseNfRule(SerializeNfRule(rule));
    ASSERT_TRUE(round.ok()) << SerializeNfRule(rule);
    EXPECT_EQ(SerializeNfRule(round.value()), SerializeNfRule(rule));
  }
}

TEST(Iptables, RequiresNetAdmin) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  auto denied = sys.RunCapture(alice, "/sbin/iptables",
                               {"iptables", "-A", "chain=OUTPUT", "verdict=DROP"});
  EXPECT_NE(denied.exit_code, 0);
  auto listing = sys.RunCapture(alice, "/sbin/iptables", {"iptables", "-L"});
  EXPECT_NE(listing.exit_code, 0);
  Task& root = sys.Login("root");
  auto ok = sys.RunCapture(root, "/sbin/iptables", {"iptables", "-L"});
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
  EXPECT_NE(ok.out.find(kProtegoRawRuleTag), std::string::npos);
}

TEST(Iptables, AdminRuleChangesTraffic) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  // Block all UDP to port 7777 system-wide.
  auto add = sys.RunCapture(root, "/sbin/iptables",
                            {"iptables", "-A", "chain=OUTPUT", "proto=udp", "dport=7777",
                             "verdict=DROP", "comment=testblock"});
  ASSERT_EQ(add.exit_code, 0) << add.err;

  Task& alice = sys.Login("alice");
  int server = k.SocketCall(alice, kAfInet, kSockDgram, 0).value();
  ASSERT_TRUE(k.BindCall(alice, server, 7777).ok());
  int client = k.SocketCall(alice, kAfInet, kSockDgram, 0).value();
  Packet p;
  p.l4_proto = kProtoUdp;
  p.dst_ip = kLocalhostIp;
  p.dst_port = 7777;
  (void)k.SendCall(alice, client, p);
  EXPECT_FALSE(k.RecvCall(alice, server).value().has_value());  // dropped

  // Delete the rule by its comment tag; traffic flows again.
  auto del = sys.RunCapture(root, "/sbin/iptables", {"iptables", "-D", "testblock"});
  ASSERT_EQ(del.exit_code, 0) << del.err;
  (void)k.SendCall(alice, client, p);
  EXPECT_TRUE(k.RecvCall(alice, server).value().has_value());
  // Deleting again reports the miss.
  EXPECT_NE(sys.RunCapture(root, "/sbin/iptables", {"iptables", "-D", "testblock"}).exit_code,
            0);
}

TEST(Iptables, AdminCanWidenTheRawPolicy) {
  // §4.1.1: "the rules may be changed by the administrator through the
  // iptables utility" — permit raw UDP to the gateway echo port.
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  int raw = k.SocketCall(alice, kAfInet, kSockRaw, kProtoUdp).value();
  Packet probe;
  probe.l4_proto = kProtoUdp;
  probe.dst_ip = kSimGatewayIp;
  probe.dst_port = 7;
  (void)k.SendCall(alice, raw, probe);
  EXPECT_FALSE(k.RecvCall(alice, raw).value().has_value());  // default: dropped

  Task& root = sys.Login("root");
  auto widen = sys.RunCapture(
      root, "/sbin/iptables",
      {"iptables", "-A", "chain=OUTPUT", "proto=udp", "dport=7", "raw=1",
       "verdict=ACCEPT", "comment=echo-probe"});
  ASSERT_EQ(widen.exit_code, 0) << widen.err;
  // First-match semantics: the new ACCEPT must come before the default
  // DROP, so re-ordering matters — the default set is appended at boot and
  // our -A appends after it. Verify the administrator can fix this by
  // removing and re-adding the defaults... or simply observe the packet is
  // still dropped (documenting first-match behaviour):
  (void)k.SendCall(alice, raw, probe);
  EXPECT_FALSE(k.RecvCall(alice, raw).value().has_value());
  // The effective workflow: drop the tagged default set, add the custom
  // accept, re-install the defaults (now evaluated after it).
  ASSERT_EQ(sys.RunCapture(root, "/sbin/iptables",
                           {"iptables", "-D", kProtegoRawRuleTag})
                .exit_code,
            0);
  InstallDefaultRawSocketRules(&k.net().netfilter());
  // Custom rule now precedes the defaults.
  (void)k.SendCall(alice, raw, probe);
  EXPECT_TRUE(k.RecvCall(alice, raw).value().has_value());
}

}  // namespace
}  // namespace protego
