// Unit tests for the configuration-file parsers.

#include <gtest/gtest.h>

#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/passwd_db.h"
#include "src/config/ppp_options.h"
#include "src/config/sudoers.h"

namespace protego {
namespace {

TEST(Fstab, ParsesEntriesAndOptions) {
  auto entries = ParseFstab("# comment\n/dev/cdrom /media/cdrom iso9660 ro,user 0 0\n"
                            "/dev/sdb1 /media/usb vfat rw,users\n");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  const FstabEntry& cd = entries.value()[0];
  EXPECT_EQ(cd.device, "/dev/cdrom");
  EXPECT_TRUE(cd.UserMountable());
  EXPECT_FALSE(cd.AnyUserMayUnmount());
  EXPECT_TRUE(entries.value()[1].AnyUserMayUnmount());
}

TEST(Fstab, RejectsMalformedLines) {
  EXPECT_EQ(ParseFstab("/dev/x /mnt\n").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseFstab("/dev/x relative ext4 ro\n").code(), Errno::kEINVAL);
  EXPECT_TRUE(ParseFstab("").ok());
}

TEST(Fstab, SerializeRoundTrips) {
  auto entries = ParseFstab("/dev/a /m1 ext4 ro,user\n/dev/b /m2 vfat rw\n");
  ASSERT_TRUE(entries.ok());
  auto again = ParseFstab(SerializeFstab(entries.value()));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().size(), 2u);
  EXPECT_EQ(again.value()[0].ToString(), entries.value()[0].ToString());
}

TEST(Sudoers, ClassicRules) {
  auto policy = ParseSudoers("alice ALL=(bob,charlie) /usr/bin/lpr *\n"
                             "%admin ALL=(ALL) ALL\n"
                             "dave ALL= NOPASSWD: /bin/true, /bin/false\n");
  ASSERT_TRUE(policy.ok());
  ASSERT_EQ(policy.value().rules.size(), 3u);
  const SudoRule& r0 = policy.value().rules[0];
  EXPECT_TRUE(r0.RunasMatches("bob"));
  EXPECT_TRUE(r0.RunasMatches("charlie"));
  EXPECT_FALSE(r0.RunasMatches("dave"));
  EXPECT_TRUE(r0.CommandMatches("/usr/bin/lpr /tmp/x"));
  const SudoRule& r1 = policy.value().rules[1];
  EXPECT_TRUE(r1.RunasMatches("anyone"));
  EXPECT_TRUE(r1.CommandMatches("whatever"));
  const SudoRule& r2 = policy.value().rules[2];
  EXPECT_TRUE(r2.nopasswd);
  EXPECT_EQ(r2.runas, std::vector<std::string>{"root"});  // default runas
  EXPECT_EQ(r2.commands.size(), 2u);
  EXPECT_TRUE(r2.CommandMatches("/bin/true"));
  EXPECT_TRUE(r2.CommandMatches("/bin/true --flag"));  // bare path matches w/ args
  EXPECT_FALSE(r2.CommandMatches("/bin/truex"));
}

TEST(Sudoers, TagsAndDefaults) {
  auto policy = ParseSudoers("Defaults timestamp_timeout=10, env_keep=\"PATH HOME\"\n"
                             "ALL ALL=(ALL) TARGETPW: ALL\n");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().timestamp_timeout_sec, 600u);
  EXPECT_EQ(policy.value().env_keep, (std::vector<std::string>{"PATH", "HOME"}));
  EXPECT_TRUE(policy.value().rules[0].targetpw);
  EXPECT_FALSE(policy.value().rules[0].nopasswd);
}

TEST(Sudoers, ProtegoExtensions) {
  auto policy = ParseSudoers("Group_Auth staff\n"
                             "File_Delegate /usr/lib/ssh-keysign /etc/ssh/key r\n"
                             "File_Delegate /x /y rw\n"
                             "Reauth_Read /etc/shadows/*\n");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().password_groups, std::vector<std::string>{"staff"});
  ASSERT_EQ(policy.value().file_delegations.size(), 2u);
  EXPECT_EQ(policy.value().file_delegations[0].allow_may, kMayRead);
  EXPECT_EQ(policy.value().file_delegations[1].allow_may, kMayRead | kMayWrite);
  EXPECT_EQ(policy.value().reauth_read_globs, std::vector<std::string>{"/etc/shadows/*"});
}

TEST(Sudoers, MalformedInputRejected) {
  EXPECT_EQ(ParseSudoers("alice no-equals-here\n").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseSudoers("alice ALL=(unclosed runas\n").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseSudoers("alice ALL=(root)\n").code(), Errno::kEINVAL);  // no commands
  EXPECT_EQ(ParseSudoers("File_Delegate /x /y q\n").code(), Errno::kEINVAL);
  EXPECT_EQ(ParseSudoers("Group_Auth\n").code(), Errno::kEINVAL);
}

TEST(Sudoers, FragmentsMerge) {
  auto policy = ParseSudoersWithFragments("alice ALL=(root) ALL\n",
                                          {"bob ALL=(root) ALL\n", "Group_Auth staff\n"});
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().rules.size(), 2u);
  EXPECT_EQ(policy.value().password_groups.size(), 1u);
}

TEST(Sudoers, SerializeRoundTrips) {
  auto policy = ParseSudoers("Defaults timestamp_timeout=5\n"
                             "Group_Auth staff\n"
                             "File_Delegate /bin/a /etc/b rw\n"
                             "alice ALL=(bob) NOPASSWD: /usr/bin/lpr *\n"
                             "ALL ALL=(ALL) TARGETPW: ALL\n");
  ASSERT_TRUE(policy.ok());
  auto again = ParseSudoers(SerializeSudoers(policy.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(SerializeSudoers(again.value()), SerializeSudoers(policy.value()));
}

TEST(BindConf, ParsesAndValidates) {
  auto entries = ParseBindConf("25 /usr/sbin/eximd 101\n80 /usr/sbin/httpd 33\n");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].port, 25);
  EXPECT_EQ(entries.value()[0].uid, 101u);

  EXPECT_EQ(ParseBindConf("8080 /bin/x 0\n").code(), Errno::kEINVAL);   // >= 1024
  EXPECT_EQ(ParseBindConf("0 /bin/x 0\n").code(), Errno::kEINVAL);      // port 0
  EXPECT_EQ(ParseBindConf("25 relative 0\n").code(), Errno::kEINVAL);   // relative path
  EXPECT_EQ(ParseBindConf("25 /a 0\n25 /a 0\n").code(), Errno::kEINVAL);  // literal duplicate
  EXPECT_EQ(ParseBindConf("25 /a\n").code(), Errno::kEINVAL);           // missing uid

  // A port may carry several distinct (binary, uid) allocations.
  auto multi = ParseBindConf("25 /a 0\n25 /b 1\n");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi.value().size(), 2u);
}

TEST(PppOptionsTest, DirectivesAndSafety) {
  auto options = ParsePppOptions("userroutes\nnouserdialout\nsafeopt vjcomp\n");
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options.value().user_routes);
  EXPECT_FALSE(options.value().user_dialout);
  EXPECT_TRUE(options.value().IsSafeOption("vjcomp"));
  EXPECT_TRUE(options.value().IsSafeOption("bsdcomp"));
  EXPECT_TRUE(options.value().IsSafeOption("mtu 1400"));
  EXPECT_FALSE(options.value().IsSafeOption("defaultroute"));
  EXPECT_EQ(ParsePppOptions("unknowndirective\n").code(), Errno::kEINVAL);
}

TEST(PasswdDb, RecordRoundTrips) {
  auto p = ParsePasswdLine("alice:x:1000:1000:Alice:/home/alice:/bin/sh");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToLine(), "alice:x:1000:1000:Alice:/home/alice:/bin/sh");
  EXPECT_EQ(ParsePasswdLine("broken").code(), Errno::kEINVAL);
  EXPECT_EQ(ParsePasswdLine(":x:1:1:::").code(), Errno::kEINVAL);
  EXPECT_EQ(ParsePasswdLine("a:x:nan:1:g:h:s").code(), Errno::kEINVAL);

  auto s = ParseShadowLine("alice:$sim$salt$hash:100:::::");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().hash, "$sim$salt$hash");
  EXPECT_EQ(s.value().last_change, 100u);

  auto g = ParseGroupLine("staff:pw:50:alice,bob");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().members, (std::vector<std::string>{"alice", "bob"}));
  auto empty_members = ParseGroupLine("x::5:");
  ASSERT_TRUE(empty_members.ok());
  EXPECT_TRUE(empty_members.value().members.empty());
}

TEST(PasswdDb, UserDbLookups) {
  auto users = ParsePasswd("a:x:1:10:::\nb:x:2:20:::\n");
  auto shadows = ParseShadow("a:h1:0:::::\nb:h2:0:::::\n");
  auto groups = ParseGroup("g1:pw:10:a\ng2::20:a,b\n");
  ASSERT_TRUE(users.ok() && shadows.ok() && groups.ok());
  UserDb db(users.take(), shadows.take(), groups.take());
  EXPECT_EQ(db.FindUser("a")->uid, 1u);
  EXPECT_EQ(db.FindUid(2)->name, "b");
  EXPECT_EQ(db.FindUser("zz"), nullptr);
  EXPECT_EQ(db.FindShadow("b")->hash, "h2");
  EXPECT_EQ(db.FindGroup("g1")->gid, 10u);
  EXPECT_EQ(db.FindGid(20)->name, "g2");
  EXPECT_EQ(db.GroupsOf("a"), (std::vector<std::string>{"g1", "g2"}));
  EXPECT_EQ(db.GroupsOf("b"), std::vector<std::string>{"g2"});
}

}  // namespace
}  // namespace protego
