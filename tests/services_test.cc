// Unit tests for the trusted services: the authentication utility and the
// monitoring daemon.

#include <gtest/gtest.h>

#include "src/base/hash.h"
#include "src/base/strings.h"
#include "src/userland/daemon_utils.h"
#include "src/protego/protego_lsm.h"
#include "src/sim/system.h"

namespace protego {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : sys_(SimMode::kProtego) {}
  SimSystem sys_;
};

TEST_F(ServicesTest, AuthVerifiesAgainstShadowFragment) {
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("alicepw");
  auto who = sys_.auth()->Authenticate(alice, {1000});
  ASSERT_TRUE(who.has_value());
  EXPECT_EQ(*who, 1000u);
  EXPECT_TRUE(alice.auth_times.count(1000));
  EXPECT_GE(sys_.auth()->successes(), 1u);
}

TEST_F(ServicesTest, AuthTriesThreeTimesThenFails) {
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("wrong1");
  alice.terminal->QueueInput("wrong2");
  alice.terminal->QueueInput("wrong3");
  alice.terminal->QueueInput("alicepw");  // too late: attempts exhausted
  EXPECT_FALSE(sys_.auth()->Authenticate(alice, {1000}).has_value());
  EXPECT_EQ(alice.terminal->ReadLine(), "alicepw");  // 4th line never consumed
}

TEST_F(ServicesTest, AuthMultiCandidateMatchesTypedPassword) {
  Task& bob = sys_.Login("bob");
  bob.terminal->QueueInput("alicepw");  // bob types ALICE's password
  auto who = sys_.auth()->Authenticate(bob, {1001, 1000});
  ASSERT_TRUE(who.has_value());
  EXPECT_EQ(*who, 1000u);
  // The prompt named both candidates.
  EXPECT_NE(bob.terminal->output().find("bob or alice"), std::string::npos);
}

TEST_F(ServicesTest, AuthGroupAccountsUseGroupPassword) {
  Task& bob = sys_.Login("bob");
  bob.terminal->QueueInput("staffpw");
  auto who = sys_.auth()->Authenticate(bob, {kGroupAuthBase + 50});
  ASSERT_TRUE(who.has_value());
  EXPECT_NE(bob.terminal->output().find("group staff"), std::string::npos);
}

TEST_F(ServicesTest, AuthRejectsLockedAndUnknownAccounts) {
  // exim's account has no password (locked).
  Task& who = sys_.Login("alice");
  who.terminal->QueueInput("anything");
  EXPECT_FALSE(sys_.auth()->Authenticate(who, {kEximUid}).has_value());
  EXPECT_FALSE(sys_.auth()->Authenticate(who, {55555}).has_value());
  // A task with no terminal cannot authenticate.
  Task& headless = sys_.kernel().CreateTask("d", Cred::ForUser(1000, 1000), nullptr);
  EXPECT_FALSE(sys_.auth()->Authenticate(headless, {1000}).has_value());
}

TEST_F(ServicesTest, DaemonPushesFstabChangesToKernel) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  size_t before = sys_.lsm()->mount_policy().size();
  auto fstab = k.ReadWholeFile(root, "/etc/fstab").value();
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/fstab",
                               fstab + "/dev/sdc1 /media/extra ext4 ro,user\n")
                  .ok());
  EXPECT_EQ(sys_.lsm()->mount_policy().size(), before + 1);
  // And the new entry is live: alice can use it immediately.
  (void)k.Mkdir(root, "/media/extra", 0755);
  (void)k.vfs().CreateDevice("/dev/sdc1", 0660, kRootUid, kRootGid, true, 8, 33);
  Task& alice = sys_.Login("alice");
  EXPECT_TRUE(k.Mount(alice, "/dev/sdc1", "/media/extra", "ext4", {"ro"}).ok());
}

TEST_F(ServicesTest, DaemonKeepsOldPolicyOnBadConfig) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  size_t before = sys_.lsm()->mount_policy().size();
  size_t errors_before = sys_.daemon()->errors().size();
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/fstab", "completely broken\n").ok());
  EXPECT_EQ(sys_.lsm()->mount_policy().size(), before);  // old policy survives
  EXPECT_GT(sys_.daemon()->errors().size(), errors_before);
}

TEST_F(ServicesTest, DaemonRegeneratesLegacyFilesFromFragments) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  // alice edits her fragment directly (as vipw would).
  auto line = k.ReadWholeFile(alice, "/etc/passwds/alice").value();
  std::string updated(Trim(line));
  size_t last_colon = updated.rfind(':');
  updated = updated.substr(0, last_colon + 1) + "/bin/bash";
  ASSERT_TRUE(k.WriteWholeFile(alice, "/etc/passwds/alice", updated + "\n").ok());
  // The daemon rebuilt the legacy shared file.
  Task& root = sys_.Login("root");
  auto legacy = k.ReadWholeFile(root, "/etc/passwd").value();
  EXPECT_NE(legacy.find("alice:x:1000:1000:alice:/home/alice:/bin/bash"),
            std::string::npos);
  // And the kernel's user database snapshot.
  EXPECT_EQ(sys_.lsm()->user_db().FindUser("alice")->shell, "/bin/bash");
}

TEST_F(ServicesTest, DaemonPicksUpSudoersFragmentCreation) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  size_t rules_before = sys_.lsm()->delegation().rules.size();
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/sudoers.d/zz-extra",
                               "bob ALL=(charlie) NOPASSWD: /usr/bin/id\n")
                  .ok());
  EXPECT_EQ(sys_.lsm()->delegation().rules.size(), rules_before + 1);
  // The rule is immediately enforceable.
  Task& bob = sys_.Login("bob");
  auto out = sys_.RunCapture(bob, "/usr/bin/sudo",
                             {"sudo", "--user=charlie", "/usr/bin/id"});
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.out.find("euid=1002"), std::string::npos);
}

TEST_F(ServicesTest, DaemonStopsWatching) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  sys_.daemon()->Stop();
  size_t before = sys_.lsm()->mount_policy().size();
  ASSERT_TRUE(k.WriteWholeFile(root, "/etc/fstab", "/dev/x /m ext4 user\n").ok());
  EXPECT_EQ(sys_.lsm()->mount_policy().size(), before);  // no watch, no sync
  // An explicit SyncAll still works.
  ASSERT_TRUE(sys_.daemon()->SyncAll().ok());
  EXPECT_EQ(sys_.lsm()->mount_policy().size(), 1u);
}

TEST_F(ServicesTest, PasswdChangeFlowsThroughDaemonToLegacyShadow) {
  Kernel& k = sys_.kernel();
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("alicepw");   // kernel reauth gate
  alice.terminal->QueueInput("brandnew");  // new password
  auto out = sys_.RunCapture(alice, "/usr/bin/passwd", {"passwd"});
  ASSERT_EQ(out.exit_code, 0) << out.err;
  // The legacy shared shadow now verifies the NEW password.
  Task& root = sys_.Login("root");
  auto legacy = k.ReadWholeFile(root, "/etc/shadow").value();
  bool found = false;
  for (const std::string& line : Split(legacy, '\n')) {
    auto f = Split(line, ':');
    if (f.size() >= 2 && f[0] == "alice") {
      EXPECT_TRUE(VerifyPassword("brandnew", f[1]));
      EXPECT_FALSE(VerifyPassword("alicepw", f[1]));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace protego
