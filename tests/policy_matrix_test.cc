// Table 4 validation: every studied interface's safe subset must work for
// unprivileged users on Protego, and its dangerous superset must stay
// refused.

#include <gtest/gtest.h>

#include "src/study/policy_matrix.h"

namespace protego {
namespace {

class PolicyMatrixTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PolicyMatrixTest, SafeSubsetWorksDangerousSupersetRefused) {
  const PolicyMatrixRow& row = PolicyMatrix()[GetParam()];
  SimSystem sys(SimMode::kProtego);
  PolicyScenarioResult result = row.check(sys);
  EXPECT_TRUE(result.permitted_case_ok)
      << row.interface_name << ": system-policy-permitted case failed (" << result.detail
      << ")";
  EXPECT_TRUE(result.forbidden_case_ok)
      << row.interface_name << ": forbidden case was not refused (" << result.detail << ")";
}

INSTANTIATE_TEST_SUITE_P(AllInterfaces, PolicyMatrixTest,
                         ::testing::Range<size_t>(0, PolicyMatrix().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string name = PolicyMatrix()[info.param].interface_name;
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out.push_back(c);
                             }
                           }
                           return out;
                         });

TEST(PolicyMatrix, CoversNineInterfaces) { EXPECT_EQ(PolicyMatrix().size(), 9u); }

}  // namespace
}  // namespace protego
