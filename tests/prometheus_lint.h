// A small Prometheus text-exposition-format checker, shared by the unit
// tests and the prometheus_check CLI that CI runs against the quickstart's
// /proc/protego/metrics output.
//
// Checks structure (HELP/TYPE comments, metric and label name grammar,
// sample syntax) and the histogram contract: every histogram family must
// emit cumulative, non-decreasing buckets ending in le="+Inf", plus _sum
// and _count samples with _count equal to the +Inf bucket.
//
// OpenMetrics-style exemplars (" # {span=\"17\",pid=\"3\"} 41" after a
// bucket sample) are accepted ONLY on _bucket lines of histogram families,
// and the exemplar value must fit the bucket it annotates (value <= le).

#ifndef TESTS_PROMETHEUS_LINT_H_
#define TESTS_PROMETHEUS_LINT_H_

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace protego {
namespace prom {

inline bool ValidMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&head](char c) { return head(c) || std::isdigit(static_cast<unsigned char>(c)); };
  if (!head(name[0])) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!tail(c)) {
      return false;
    }
  }
  return true;
}

inline bool ValidLabelName(std::string_view name) {
  return ValidMetricName(name) && name.find(':') == std::string_view::npos;
}

struct Sample {
  std::string name;
  std::string le;          // value of the "le" label, if present
  std::string label_key;   // serialized labels minus "le" (bucket grouping)
  double value = 0;
  bool has_exemplar = false;
  double exemplar_value = 0;
  std::string exemplar_labels;  // serialized exemplar labels
};

// Parses a {k="v",...} label set starting at `*i` (which must point at '{');
// advances *i past the closing '}'. `le` may be nullptr (exemplar label
// sets have no special le handling).
inline std::optional<std::string> ParseLabelSet(const std::string& line, size_t* i,
                                                std::string* key, std::string* le) {
  ++*i;  // past '{'
  while (*i < line.size() && line[*i] != '}') {
    size_t eq = line.find('=', *i);
    if (eq == std::string::npos) {
      return "label without '=' in: " + line;
    }
    std::string lname = line.substr(*i, eq - *i);
    if (!ValidLabelName(lname)) {
      return "bad label name '" + lname + "' in: " + line;
    }
    if (eq + 1 >= line.size() || line[eq + 1] != '"') {
      return "unquoted label value in: " + line;
    }
    std::string lvalue;
    size_t j = eq + 2;
    for (; j < line.size() && line[j] != '"'; ++j) {
      if (line[j] == '\\') {
        if (j + 1 >= line.size()) {
          return "dangling escape in: " + line;
        }
        char esc = line[j + 1];
        if (esc != '\\' && esc != '"' && esc != 'n') {
          return "bad escape in: " + line;
        }
        lvalue.push_back(esc == 'n' ? '\n' : esc);
        ++j;
      } else {
        lvalue.push_back(line[j]);
      }
    }
    if (j >= line.size()) {
      return "unterminated label value in: " + line;
    }
    *i = j + 1;  // past closing quote
    if (le != nullptr && lname == "le") {
      *le = lvalue;
    } else {
      *key += lname + "=" + lvalue + ";";
    }
    if (*i < line.size() && line[*i] == ',') {
      ++*i;
    } else if (*i < line.size() && line[*i] != '}') {
      return "expected ',' or '}' in: " + line;
    }
  }
  if (*i >= line.size() || line[*i] != '}') {
    return "unterminated label set in: " + line;
  }
  ++*i;
  return std::nullopt;
}

// Parses one sample line into `out`; returns an error message on failure.
inline std::optional<std::string> ParseSampleLine(const std::string& line, Sample* out) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') {
    ++i;
  }
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    return "bad metric name in: " + line;
  }
  if (i < line.size() && line[i] == '{') {
    if (auto err = ParseLabelSet(line, &i, &out->label_key, &out->le)) {
      return err;
    }
  }
  if (i >= line.size() || line[i] != ' ') {
    return "missing value separator in: " + line;
  }
  std::string rest = line.substr(i + 1);
  // Split off an OpenMetrics exemplar: "<value> # {labels} <exemplar value>".
  std::string value_str = rest;
  size_t hash = rest.find(" # ");
  if (hash != std::string::npos) {
    value_str = rest.substr(0, hash);
    std::string ex = rest.substr(hash + 3);
    if (ex.empty() || ex[0] != '{') {
      return "exemplar without label set in: " + line;
    }
    size_t k = 0;
    if (auto err = ParseLabelSet(ex, &k, &out->exemplar_labels, nullptr)) {
      return err;
    }
    if (k >= ex.size() || ex[k] != ' ') {
      return "exemplar missing value in: " + line;
    }
    std::string exval = ex.substr(k + 1);
    char* exend = nullptr;
    out->exemplar_value = std::strtod(exval.c_str(), &exend);
    if (exend == exval.c_str() || *exend != '\0') {
      return "unparseable exemplar value '" + exval + "' in: " + line;
    }
    out->has_exemplar = true;
  }
  if (value_str == "+Inf") {
    out->value = HUGE_VAL;
    return std::nullopt;
  }
  char* end = nullptr;
  out->value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0') {
    return "unparseable value '" + value_str + "' in: " + line;
  }
  return std::nullopt;
}

// Validates `text`; returns std::nullopt when it is well-formed Prometheus
// text exposition format, otherwise the first problem found.
inline std::optional<std::string> LintPrometheusText(std::string_view text) {
  if (!text.empty() && text.back() != '\n') {
    return "exposition must end with a newline";
  }
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::vector<Sample> samples;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line(text.substr(pos, nl - pos));
    pos = nl + 1;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // "# HELP name text" or "# TYPE name kind".
      if (line.rfind("# HELP ", 0) == 0) {
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return "malformed TYPE line: " + line;
        }
        std::string fam = rest.substr(0, sp);
        std::string kind = rest.substr(sp + 1);
        if (!ValidMetricName(fam)) {
          return "bad family name in TYPE line: " + line;
        }
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return "unknown type '" + kind + "' in: " + line;
        }
        if (types.count(fam) != 0) {
          return "duplicate TYPE for family " + fam;
        }
        types[fam] = kind;
        continue;
      }
      return "unknown comment line: " + line;
    }
    Sample s;
    if (auto err = ParseSampleLine(line, &s)) {
      return err;
    }
    samples.push_back(std::move(s));
  }

  // Exemplars are only meaningful on histogram bucket lines, and must fit
  // the bucket they annotate.
  for (const Sample& s : samples) {
    if (!s.has_exemplar) {
      continue;
    }
    if (s.name.size() < 8 || s.name.substr(s.name.size() - 7) != "_bucket") {
      return "exemplar on non-bucket sample: " + s.name;
    }
    if (s.le.empty()) {
      return "exemplar on bucket without le label: " + s.name;
    }
    double le = s.le == "+Inf" ? HUGE_VAL : std::strtod(s.le.c_str(), nullptr);
    if (s.exemplar_value > le) {
      return "exemplar value exceeds bucket bound in " + s.name;
    }
  }

  // Histogram contract per (family, non-le label set).
  for (const auto& [fam, kind] : types) {
    if (kind != "histogram") {
      continue;
    }
    std::map<std::string, std::vector<Sample>> buckets;
    std::map<std::string, double> counts;
    std::map<std::string, bool> sums;
    for (const Sample& s : samples) {
      if (s.name == fam + "_bucket") {
        buckets[s.label_key].push_back(s);
      } else if (s.name == fam + "_count") {
        counts[s.label_key] = s.value;
      } else if (s.name == fam + "_sum") {
        sums[s.label_key] = true;
      }
    }
    if (buckets.empty()) {
      return "histogram " + fam + " has no _bucket samples";
    }
    for (const auto& [key, series] : buckets) {
      double prev = -1;
      double prev_le = -HUGE_VAL;
      for (const Sample& s : series) {
        if (s.le.empty()) {
          return fam + "_bucket sample missing le label";
        }
        double le = s.le == "+Inf" ? HUGE_VAL : std::strtod(s.le.c_str(), nullptr);
        if (le <= prev_le) {
          return "histogram " + fam + " buckets not in increasing le order";
        }
        if (s.value < prev) {
          return "histogram " + fam + " buckets not cumulative";
        }
        prev = s.value;
        prev_le = le;
      }
      if (series.back().le != "+Inf") {
        return "histogram " + fam + " missing le=\"+Inf\" bucket";
      }
      if (counts.count(key) == 0) {
        return "histogram " + fam + " missing _count";
      }
      if (sums.count(key) == 0) {
        return "histogram " + fam + " missing _sum";
      }
      if (counts[key] != series.back().value) {
        return "histogram " + fam + " _count != +Inf bucket";
      }
    }
  }
  return std::nullopt;
}

}  // namespace prom
}  // namespace protego

#endif  // TESTS_PROMETHEUS_LINT_H_
