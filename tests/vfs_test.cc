// Unit tests for the VFS substrate: path handling, tree mutation, mounts,
// synthetic files, watches, and the DAC permission primitive.

#include <gtest/gtest.h>

#include "src/vfs/vfs.h"

namespace protego {
namespace {

TEST(VfsPath, Normalize) {
  EXPECT_EQ(Vfs::Normalize("/"), "/");
  EXPECT_EQ(Vfs::Normalize("/a/b/../c"), "/a/c");
  EXPECT_EQ(Vfs::Normalize("/a//b/./c/"), "/a/b/c");
  EXPECT_EQ(Vfs::Normalize("/.."), "/");
  EXPECT_EQ(Vfs::Normalize("/a/../../b"), "/b");
}

TEST(VfsTree, CreateResolveReadWrite) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/etc/deep/nested").ok());
  ASSERT_TRUE(vfs.CreateFile("/etc/deep/nested/f", 0644, 10, 20, "hello").ok());
  auto node = vfs.Resolve("/etc/deep/nested/f");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node.value()->inode().uid, 10u);
  EXPECT_EQ(node.value()->inode().gid, 20u);
  EXPECT_EQ(vfs.ReadNode(node.value()).value(), "hello");
  ASSERT_TRUE(vfs.WriteNode(node.value(), " world", /*append=*/true).ok());
  EXPECT_EQ(vfs.ReadFile("/etc/deep/nested/f").value(), "hello world");
  EXPECT_EQ(vfs.PathOf(node.value()), "/etc/deep/nested/f");
}

TEST(VfsTree, ErrnoContract) {
  Vfs vfs;
  EXPECT_EQ(vfs.Resolve("/missing").code(), Errno::kENOENT);
  EXPECT_EQ(vfs.Resolve("relative").code(), Errno::kEINVAL);
  ASSERT_TRUE(vfs.CreateFile("/f", 0644, 0, 0).ok());
  EXPECT_EQ(vfs.CreateFile("/f", 0644, 0, 0).code(), Errno::kEEXIST);
  EXPECT_EQ(vfs.Resolve("/f/child").code(), Errno::kENOTDIR);
  ASSERT_TRUE(vfs.EnsureDirs("/d/sub").ok());
  EXPECT_EQ(vfs.Unlink("/d").code(), Errno::kENOTEMPTY);
  ASSERT_TRUE(vfs.Unlink("/d/sub").ok());
  ASSERT_TRUE(vfs.Unlink("/d").ok());
  EXPECT_EQ(vfs.Unlink("/d").code(), Errno::kENOENT);
}

TEST(VfsTree, RenameMovesSubtrees) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/a").ok());
  ASSERT_TRUE(vfs.EnsureDirs("/b").ok());
  ASSERT_TRUE(vfs.CreateFile("/a/f", 0644, 0, 0, "data").ok());
  ASSERT_TRUE(vfs.Rename("/a/f", "/b/g").ok());
  EXPECT_EQ(vfs.Resolve("/a/f").code(), Errno::kENOENT);
  EXPECT_EQ(vfs.ReadFile("/b/g").value(), "data");
}

TEST(VfsMounts, MountCoversAndUmountUncovers) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/mnt/cd").ok());
  ASSERT_TRUE(vfs.CreateFile("/mnt/cd/shadowed", 0644, 0, 0, "under").ok());
  ASSERT_TRUE(vfs.AddMount("/mnt/cd", "/dev/cdrom", "iso9660", {"ro"}, 1000,
                           [](Vnode* root) {
                             Inode f;
                             f.mode = kIfReg | 0444;
                             f.data = "on-media";
                             (void)root->AddChild("f", std::move(f));
                           })
                  .ok());
  EXPECT_EQ(vfs.ReadFile("/mnt/cd/f").value(), "on-media");
  EXPECT_EQ(vfs.ReadFile("/mnt/cd/shadowed").code(), Errno::kENOENT);
  const MountEntry* entry = vfs.FindMount("/mnt/cd");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->mounter, 1000u);
  EXPECT_EQ(entry->fstype, "iso9660");
  // PathOf works across the mount boundary.
  auto node = vfs.Resolve("/mnt/cd/f");
  EXPECT_EQ(vfs.PathOf(node.value()), "/mnt/cd/f");

  ASSERT_TRUE(vfs.RemoveMount("/mnt/cd").ok());
  EXPECT_EQ(vfs.ReadFile("/mnt/cd/shadowed").value(), "under");
  EXPECT_EQ(vfs.RemoveMount("/mnt/cd").code(), Errno::kEINVAL);
}

TEST(VfsMounts, StackedMountsAreRejected) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/m").ok());
  ASSERT_TRUE(vfs.AddMount("/m", "a", "tmpfs", {}, 0, nullptr).ok());
  EXPECT_EQ(vfs.AddMount("/m", "b", "tmpfs", {}, 0, nullptr).code(), Errno::kEBUSY);
}

TEST(VfsMounts, BusyMountpointCannotBeUnlinked) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/m").ok());
  ASSERT_TRUE(vfs.AddMount("/m", "a", "tmpfs", {}, 0, nullptr).ok());
  EXPECT_EQ(vfs.Unlink("/m").code(), Errno::kEBUSY);
}

TEST(VfsSynthetic, ReadWriteCallbacks) {
  Vfs vfs;
  std::string stored = "initial";
  SyntheticOps ops;
  ops.read = [&stored]() { return stored; };
  ops.write = [&stored](std::string_view data) -> Result<Unit> {
    if (data == "reject") {
      return Error(Errno::kEINVAL);
    }
    stored = std::string(data);
    return OkUnit();
  };
  ASSERT_TRUE(vfs.CreateSynthetic("/proc/x/y", 0644, std::move(ops)).ok());
  EXPECT_EQ(vfs.ReadFile("/proc/x/y").value(), "initial");
  ASSERT_TRUE(vfs.WriteFile("/proc/x/y", "updated").ok());
  EXPECT_EQ(stored, "updated");
  EXPECT_EQ(vfs.WriteFile("/proc/x/y", "reject").code(), Errno::kEINVAL);
  EXPECT_EQ(stored, "updated");  // rejected write left state intact
}

TEST(VfsWatch, FiresForPathAndChildren) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/etc/frag").ok());
  std::vector<std::string> events;
  int id = vfs.AddWatch("/etc/frag", [&events](FsEvent event, const std::string& path) {
    events.push_back(std::string(FsEventName(event)) + " " + path);
  });
  ASSERT_TRUE(vfs.CreateFile("/etc/frag/a", 0644, 0, 0).ok());
  ASSERT_TRUE(vfs.WriteFile("/etc/frag/a", "x").ok());
  ASSERT_TRUE(vfs.Unlink("/etc/frag/a").ok());
  ASSERT_TRUE(vfs.CreateFile("/etc/unwatched", 0644, 0, 0).ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "CREATED /etc/frag/a");
  EXPECT_EQ(events[1], "MODIFIED /etc/frag/a");
  EXPECT_EQ(events[2], "DELETED /etc/frag/a");
  vfs.RemoveWatch(id);
  ASSERT_TRUE(vfs.CreateFile("/etc/frag/b", 0644, 0, 0).ok());
  EXPECT_EQ(events.size(), 3u);
  // Prefix matching is component-wise: /etc/fragX must not match /etc/frag.
  int id2 = vfs.AddWatch("/etc/frag", [&events](FsEvent, const std::string& p) {
    events.push_back(p);
  });
  ASSERT_TRUE(vfs.CreateFile("/etc/fragment", 0644, 0, 0).ok());
  EXPECT_EQ(events.size(), 3u);
  vfs.RemoveWatch(id2);
}

TEST(Dac, OwnerGroupOtherTriads) {
  Inode inode;
  inode.mode = kIfReg | 0640;
  inode.uid = 100;
  inode.gid = 50;
  auto in_g50 = [](Gid g) { return g == 50; };
  auto in_none = [](Gid) { return false; };
  EXPECT_TRUE(DacPermits(inode, 100, in_none, kMayRead | kMayWrite));
  EXPECT_FALSE(DacPermits(inode, 100, in_none, kMayExec));
  EXPECT_TRUE(DacPermits(inode, 200, in_g50, kMayRead));
  EXPECT_FALSE(DacPermits(inode, 200, in_g50, kMayWrite));
  EXPECT_FALSE(DacPermits(inode, 200, in_none, kMayRead));
  // Owner check takes precedence: owner with 0066 still cannot read.
  inode.mode = kIfReg | 0066;
  EXPECT_FALSE(DacPermits(inode, 100, in_none, kMayRead));
  EXPECT_TRUE(DacPermits(inode, 200, in_none, kMayRead));
}

TEST(ModeStringTest, RendersSetuidBit) {
  EXPECT_EQ(ModeString(kIfReg | 04755), "-rwsr-xr-x");
  EXPECT_EQ(ModeString(kIfReg | 0755), "-rwxr-xr-x");
  EXPECT_EQ(ModeString(kIfDir | 01777), "drwxrwxrwt");
  EXPECT_EQ(ModeString(kIfChr | 0600), "crw-------");
}

}  // namespace
}  // namespace protego
