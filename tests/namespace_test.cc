// Tests for the namespace substrate (§4.6/§6): pre-3.8 vs 3.8+ semantics,
// the chromium-sandbox utility, isolation of sandbox networks, and the
// paper's argument that namespaces cannot replace Protego for SHARED
// resources.

#include <gtest/gtest.h>

#include "src/sim/system.h"
#include "src/userland/sandbox_utils.h"

namespace protego {
namespace {

TEST(Namespaces, Pre38RequiresSysAdmin) {
  SimSystem sys(SimMode::kLinux);  // models Linux 3.6
  Task& alice = sys.Login("alice");
  EXPECT_EQ(sys.kernel().Unshare(alice, Kernel::kCloneNewUser | Kernel::kCloneNewNet).code(),
            Errno::kEPERM);
  Task& root = sys.Login("root");
  EXPECT_TRUE(sys.kernel().Unshare(root, Kernel::kCloneNewNet).ok());
  EXPECT_NE(root.ns.net_ns, 0);
}

TEST(Namespaces, Post38UnprivilegedUserNamespaces) {
  SimSystem sys(SimMode::kProtego);  // models 3.8+ semantics
  Task& alice = sys.Login("alice");
  // A user namespace alone: free.
  EXPECT_TRUE(sys.kernel().Unshare(alice, Kernel::kCloneNewUser).ok());
  EXPECT_NE(alice.ns.user_ns, 0);
  // Network namespace inside the user namespace: also free.
  EXPECT_TRUE(sys.kernel().Unshare(alice, Kernel::kCloneNewNet).ok());
  EXPECT_NE(alice.ns.net_ns, 0);
  // But a network namespace WITHOUT a user namespace still needs privilege.
  Task& bob = sys.Login("bob");
  EXPECT_EQ(sys.kernel().Unshare(bob, Kernel::kCloneNewNet).code(), Errno::kEPERM);
  // Unknown flags are rejected.
  EXPECT_EQ(sys.kernel().Unshare(bob, 0x12345).code(), Errno::kEINVAL);
}

TEST(Namespaces, ChromiumSandboxSetuidOnOldKernelsUnprivilegedOnNew) {
  // Stock 3.6: the helper carries the setuid bit and still works.
  {
    SimSystem sys(SimMode::kLinux);
    Task& alice = sys.Login("alice");
    auto st = sys.kernel().Stat(alice, "/usr/lib/chromium-sandbox");
    EXPECT_TRUE((st.value().mode & kSetUidBit) != 0);
    auto out = sys.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
    EXPECT_EQ(out.exit_code, 0) << out.err;
    EXPECT_NE(out.out.find("raw socket ok"), std::string::npos);
    EXPECT_NE(out.out.find("outside world unreachable"), std::string::npos);
  }
  // 3.8+ semantics: same behaviour, no setuid bit anywhere.
  {
    SimSystem sys(SimMode::kProtego);
    Task& alice = sys.Login("alice");
    auto st = sys.kernel().Stat(alice, "/usr/lib/chromium-sandbox");
    EXPECT_TRUE((st.value().mode & kSetUidBit) == 0);
    auto out = sys.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
    EXPECT_EQ(out.exit_code, 0) << out.err;
    EXPECT_NE(out.out.find("raw socket ok"), std::string::npos);
    EXPECT_NE(out.out.find("bind 80 ok"), std::string::npos);
    EXPECT_NE(out.out.find("outside world unreachable"), std::string::npos);
  }
}

TEST(Namespaces, SandboxNetworkIsInvisibleFromOutside) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  ASSERT_TRUE(k.Unshare(alice, Kernel::kCloneNewUser | Kernel::kCloneNewNet).ok());

  // alice binds "port 80" in her sandbox...
  auto fd = k.SocketCall(alice, kAfInet, kSockStream, 0);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.BindCall(alice, fd.value(), 80).ok());
  // ...which does not appear in (or conflict with) the real port namespace.
  EXPECT_FALSE(k.net().PortOwner(kProtoTcp, 80, 0).has_value());
  Task& www = sys.Login("www-data");
  www.exe_path = "/usr/sbin/httpd";
  auto real = k.SocketCall(www, kAfInet, kSockStream, 0);
  EXPECT_TRUE(k.BindCall(www, real.value(), 80).ok());

  // Packets from the init namespace never reach the sandbox socket.
  Task& bob = sys.Login("bob");
  auto bob_fd = k.SocketCall(bob, kAfInet, kSockDgram, 0);
  Packet p;
  p.l4_proto = kProtoTcp;
  p.dst_ip = kLocalhostIp;
  p.dst_port = 80;
  (void)k.SendCall(bob, bob_fd.value(), p);
  auto got = k.RecvCall(alice, fd.value());
  EXPECT_FALSE(got.value().has_value());
}

TEST(Namespaces, SandboxCapsDoNotReachSharedResources) {
  // §6: "namespaces cannot safely allow access to shared system resources,
  // such as passwd updating the password database."
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  ASSERT_TRUE(k.Unshare(alice, Kernel::kCloneNewUser | Kernel::kCloneNewNet).ok());
  // In-sandbox "privilege" grants nothing over init-namespace objects:
  EXPECT_EQ(k.ReadWholeFile(alice, "/etc/shadow").code(), Errno::kEACCES);
  EXPECT_EQ(k.WriteWholeFile(alice, "/etc/passwd", "pwned").code(), Errno::kEACCES);
  EXPECT_EQ(k.Setuid(alice, 0).code(), Errno::kEPERM);
  EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/etc", "iso9660", {"ro"}).code(), Errno::kEPERM);
  // ...while Protego's object policies still work for the same user.
  EXPECT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
}

TEST(AtSetgid, QueuesJobsWithoutRoot) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto st = sys.kernel().Stat(alice, "/usr/bin/at");
    EXPECT_TRUE((st.value().mode & kSetGidBit) != 0);
    EXPECT_TRUE((st.value().mode & kSetUidBit) == 0);  // never root
    auto out = sys.RunCapture(alice, "/usr/bin/at", {"at", "now+1h", "echo", "hi"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    // The queued job is owned by alice with group daemon.
    Task& root = sys.Login("root");
    auto names = sys.kernel().ReadDir(root, "/var/spool/atjobs");
    ASSERT_EQ(names.value().size(), 1u);
    auto job = sys.kernel().Stat(root, "/var/spool/atjobs/" + names.value()[0]);
    EXPECT_EQ(job.value().uid, 1000u);
    EXPECT_EQ(job.value().gid, kDaemonGid);
    // atq lists it back for alice.
    auto atq = sys.RunCapture(alice, "/usr/bin/atq", {"atq"});
    EXPECT_NE(atq.out.find("1 job(s)"), std::string::npos);
  }
}

TEST(AtSetgid, SpoolInaccessibleWithoutTheSetgidHelper) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  // Direct spool access (no setgid binary) is refused by DAC.
  EXPECT_EQ(sys.kernel().ReadDir(alice, "/var/spool/atjobs").code(), Errno::kEACCES);
  EXPECT_EQ(sys.kernel().WriteWholeFile(alice, "/var/spool/atjobs/evil", "x").code(),
            Errno::kEACCES);
}

TEST(AtSetgid, UsersSeeOnlyTheirOwnJobs) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  (void)sys.RunCapture(alice, "/usr/bin/at", {"at", "midnight", "backup"});
  sys.kernel().clock().Advance(1);
  Task& bob = sys.Login("bob");
  (void)sys.RunCapture(bob, "/usr/bin/at", {"at", "noon", "lunch"});
  auto alice_q = sys.RunCapture(sys.Login("alice"), "/usr/bin/atq", {"atq"});
  EXPECT_NE(alice_q.out.find("backup"), std::string::npos);
  EXPECT_EQ(alice_q.out.find("lunch"), std::string::npos);
  EXPECT_NE(alice_q.out.find("1 job(s)"), std::string::npos);
}

}  // namespace
}  // namespace protego
