// Edge-case tests for utilities not fully covered by the functional
// equivalence suite: eject, fusermount, dmcrypt-get-device, ssh-keysign,
// xserver, exim delivery, httpd, pkexec, and the coverage registry itself.

#include <gtest/gtest.h>

#include "src/sim/system.h"
#include "src/userland/coverage.h"
#include "src/userland/daemon_utils.h"

namespace protego {
namespace {

TEST(Eject, UnmountsMountedMediaInBothModes) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    ASSERT_EQ(sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"}).exit_code, 0);
    auto out = sys.RunCapture(alice, "/usr/bin/eject", {"eject", "/dev/cdrom"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    EXPECT_EQ(sys.kernel().vfs().FindMount("/media/cdrom"), nullptr);
  }
}

TEST(Fusermount, MountsUserOwnedMountpoint) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    ASSERT_TRUE(sys.kernel().Mkdir(alice, "/home/alice/mnt", 0755).ok());
    auto out = sys.RunCapture(alice, "/usr/bin/fusermount", {"fusermount",
                                                             "/home/alice/mnt"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    auto hello = sys.kernel().ReadWholeFile(alice, "/home/alice/mnt/hello");
    EXPECT_TRUE(hello.ok()) << SimModeName(mode);
  }
}

TEST(Fusermount, RefusesForeignMountpoint) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& bob = sys.Login("bob");
    // /home/alice/mnt belongs to alice; bob may not fuse-mount there.
    Task& root = sys.Login("root");
    (void)sys.kernel().Mkdir(root, "/home/alice/mnt", 0755);
    (void)sys.kernel().Chown(root, "/home/alice/mnt", 1000, 1000);
    auto out = sys.RunCapture(bob, "/usr/bin/fusermount", {"fusermount", "/home/alice/mnt"});
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
  }
}

TEST(DmcryptGetDevice, SameAnswerBothModesKeyNeverPrinted) {
  std::string linux_out;
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/usr/bin/dmcrypt-get-device",
                              {"dmcrypt-get-device", "dm-0"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    EXPECT_NE(out.out.find("/dev/sda3"), std::string::npos);
    EXPECT_EQ(out.out.find("deadbeef"), std::string::npos) << "key leaked!";
    if (mode == SimMode::kLinux) {
      linux_out = out.out;
    } else {
      EXPECT_EQ(out.out, linux_out);  // behavioural equivalence
    }
  }
}

TEST(DmcryptGetDevice, UnknownVolumeFails) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  auto out = sys.RunCapture(alice, "/usr/bin/dmcrypt-get-device",
                            {"dmcrypt-get-device", "dm-9"});
  EXPECT_NE(out.exit_code, 0);
}

TEST(SshKeysign, SignaturesMatchAcrossModes) {
  std::string linux_sig;
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/usr/lib/ssh-keysign", {"ssh-keysign", "pubkey-blob"});
    ASSERT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    if (mode == SimMode::kLinux) {
      linux_sig = out.out;
    } else {
      EXPECT_EQ(out.out, linux_sig);  // same host key, same signature
    }
  }
}

TEST(Xserver, UnprivilegedUnderKmsOnly) {
  // Stock: works because the binary is setuid. Protego: works because KMS
  // (the kernel) owns video state. Both set the mode.
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/usr/bin/xserver", {"xserver", "--mode=1920x1080"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << out.err;
    Task& root = sys.Login("root");
    EXPECT_EQ(sys.kernel().ReadWholeFile(root, "/sys/video/mode").value(), "1920x1080\n");
  }
  // KMS validates: garbage mode rejected (Protego only — stock X would have
  // happily programmed the hardware with it).
  SimSystem protego(SimMode::kProtego);
  Task& alice = protego.Login("alice");
  EXPECT_NE(protego.RunCapture(alice, "/usr/bin/xserver", {"xserver", "--mode=junk"})
                .exit_code,
            0);
}

TEST(Eximd, DeliversToGroupWritableSpool) {
  SimSystem sys(SimMode::kProtego);
  Task& exim = sys.Login("exim");
  auto out = sys.RunCapture(exim, "/usr/sbin/eximd",
                            {"eximd", "--deliver=alice:hello alice"});
  EXPECT_EQ(out.exit_code, 0) << out.err;
  EXPECT_NE(out.out.find("delivered to alice"), std::string::npos);
  Task& root = sys.Login("root");
  auto spool = sys.kernel().ReadWholeFile(root, "/var/mail/alice");
  EXPECT_NE(spool.value().find("hello alice"), std::string::npos);
  // exim (uid 101, group mail) wrote a file it does NOT own: the §4.4
  // file-permissions technique, no root required.
  EXPECT_EQ(sys.kernel().Stat(root, "/var/mail/alice").value().uid, 1000u);
}

TEST(Eximd, CannotStartAsRandomUserInProtegoMode) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  auto out = sys.RunCapture(alice, "/usr/sbin/eximd", {"eximd"});
  EXPECT_NE(out.exit_code, 0);  // port 25 is allocated to (eximd, exim)
}

TEST(Pkexec, DelegatesViaKernelRules) {
  SimSystem sys(SimMode::kProtego);
  // charlie's NOPASSWD id rule applies through pkexec too.
  Task& charlie = sys.Login("charlie");
  auto out = sys.RunCapture(charlie, "/usr/bin/pkexec", {"pkexec", "/usr/bin/id"});
  EXPECT_EQ(out.exit_code, 0) << out.err;
  EXPECT_NE(out.out.find("euid=0"), std::string::npos);
  // bob has no rule for cat-as-root.
  Task& bob = sys.Login("bob");
  auto denied = sys.RunCapture(bob, "/usr/bin/pkexec", {"pkexec", "/bin/cat", "/etc/shadow"});
  EXPECT_NE(denied.exit_code, 0);
}

TEST(CoverageRegistry, TracksDeclaredBlocksOnly) {
  Coverage& cov = Coverage::Get();
  cov.Declare("testbin", {"a", "b", "c", "d"});
  cov.ResetHits();
  cov.Hit("testbin", "a");
  cov.Hit("testbin", "a");          // duplicate hit counts once
  cov.Hit("testbin", "undeclared");  // ignored
  cov.Hit("otherbin", "a");          // unknown binary ignored
  EXPECT_DOUBLE_EQ(cov.Percent("testbin"), 25.0);
  EXPECT_EQ(cov.MissedBlocks("testbin"), (std::vector<std::string>{"b", "c", "d"}));
  EXPECT_DOUBLE_EQ(cov.Percent("nonexistent"), 0.0);
}

TEST(SetcapAlternative, FileCapsGrantWithoutSetuid) {
  // The paper's §3.1 "Capabilities" hardening technique: a binary launched
  // with setcap-style file capabilities instead of the setuid bit.
  SimSystem sys(SimMode::kLinux);
  Kernel& k = sys.kernel();
  (void)k.InstallBinary("/usr/bin/capping", 0755, kRootUid, kRootGid,
                        [](ProcessContext& ctx) {
                          auto fd = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockRaw,
                                                          kProtoIcmp);
                          ctx.Out(fd.ok() ? "raw-ok" : "raw-denied");
                          return fd.ok() ? 0 : 1;
                        });
  Task& alice = sys.Login("alice");
  auto before = sys.RunCapture(alice, "/usr/bin/capping", {"capping"});
  EXPECT_EQ(before.out, "raw-denied");
  k.SetFileCaps("/usr/bin/capping", CapSet::Of({Capability::kNetRaw}));
  auto after = sys.RunCapture(alice, "/usr/bin/capping", {"capping"});
  EXPECT_EQ(after.out, "raw-ok");
}

}  // namespace
}  // namespace protego
