// Unit tests for src/base: strings, lexer, hashing, the Result error model,
// and the virtual clock.

#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/base/hash.h"
#include "src/base/lexer.h"
#include "src/base/result.h"
#include "src/base/strings.h"

namespace protego {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, SplitWhitespaceDropsRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n c  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/etc/passwd", "/etc"));
  EXPECT_FALSE(StartsWith("/etc", "/etc/passwd"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith(".txt", "file.txt"));
}

TEST(Strings, ParseUint) {
  EXPECT_EQ(ParseUint("0"), 0u);
  EXPECT_EQ(ParseUint("1023"), 1023u);
  EXPECT_FALSE(ParseUint("").has_value());
  EXPECT_FALSE(ParseUint("-1").has_value());
  EXPECT_FALSE(ParseUint("12x").has_value());
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(StrFormat("%%"), "%");
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(GlobMatch("/etc/shadows/*", "/etc/shadows/alice"));
  EXPECT_FALSE(GlobMatch("/etc/shadows/*", "/etc/shadow"));
  EXPECT_TRUE(GlobMatch("*", "anything at all"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_TRUE(GlobMatch("/home/*/mnt", "/home/alice/mnt"));
  EXPECT_TRUE(GlobMatch("*.txt", "notes.txt"));
  EXPECT_FALSE(GlobMatch("*.txt", "notes.txt.bak"));
  EXPECT_TRUE(GlobMatch("exact", "exact"));
  EXPECT_FALSE(GlobMatch("exact", "exactly"));
  // '*' crosses '/' (sudoers command specs rely on this).
  EXPECT_TRUE(GlobMatch("/usr/bin/lpr /home/alice/*", "/usr/bin/lpr /home/alice/a/b"));
}

TEST(Lexer, StripsCommentsAndBlankLines) {
  auto lines = LexConfig("# top comment\n\nfoo bar # trailing\n  \n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "foo bar");
  EXPECT_EQ(lines[0].line_number, 3);
}

TEST(Lexer, HashInsideQuotesIsNotComment) {
  auto lines = LexConfig("key \"value # not comment\"\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].text.find("# not comment"), std::string::npos);
}

TEST(Lexer, ContinuationJoinsLines) {
  auto lines = LexConfig("alpha \\\nbeta \\\ngamma\nnext\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "alpha beta gamma");
  EXPECT_EQ(lines[0].line_number, 1);
  EXPECT_EQ(lines[1].text, "next");
}

TEST(Lexer, FieldsRespectQuotes) {
  auto fields = LexFields("one \"two words\" three");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "two words");
  fields = LexFields("a\\ b");  // backslash outside quotes is literal
  ASSERT_EQ(fields.size(), 2u);
  fields = LexFields("\"escaped \\\" quote\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "escaped \" quote");
}

TEST(Hash, CryptRoundTrip) {
  std::string hash = CryptPassword("hunter2", MakeSalt(7));
  EXPECT_TRUE(StartsWith(hash, "$sim$"));
  EXPECT_TRUE(VerifyPassword("hunter2", hash));
  EXPECT_FALSE(VerifyPassword("hunter3", hash));
  EXPECT_FALSE(VerifyPassword("hunter2", "not-a-hash"));
  EXPECT_FALSE(VerifyPassword("hunter2", ""));
}

TEST(Hash, SaltChangesHash) {
  EXPECT_NE(CryptPassword("pw", MakeSalt(1)), CryptPassword("pw", MakeSalt(2)));
  EXPECT_EQ(CryptPassword("pw", MakeSalt(1)), CryptPassword("pw", MakeSalt(1)));
}

TEST(Hash, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
}

TEST(ResultModel, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), Errno::kOk);

  Result<int> err = Error(Errno::kEACCES, "denied");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errno::kEACCES);
  EXPECT_EQ(err.error().ToString(), "EACCES (Permission denied): denied");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultModel, ErrnoNamesMatchLinux) {
  EXPECT_STREQ(ErrnoName(Errno::kEPERM), "EPERM");
  EXPECT_EQ(static_cast<int>(Errno::kEPERM), 1);
  EXPECT_EQ(static_cast<int>(Errno::kEACCES), 13);
  EXPECT_EQ(static_cast<int>(Errno::kEADDRINUSE), 98);
}

TEST(ClockTest, AdvancesMonotonically) {
  Clock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(300);
  EXPECT_EQ(clock.Now(), 300u);
  clock.Advance(1);
  EXPECT_EQ(clock.Now(), 301u);
}

}  // namespace
}  // namespace protego
