// End-to-end smoke tests: boot both system configurations and exercise the
// headline scenario from the paper's §2 (an unprivileged user mounting the
// CD-ROM) plus basic session plumbing.

#include <gtest/gtest.h>

#include "src/sim/system.h"

namespace protego {
namespace {

TEST(SimSmoke, BootsInBothModes) {
  SimSystem linux_sys(SimMode::kLinux);
  SimSystem protego_sys(SimMode::kProtego);
  EXPECT_EQ(linux_sys.lsm(), nullptr);
  ASSERT_NE(protego_sys.lsm(), nullptr);
  // The monitoring daemon synced policy from /etc at boot.
  EXPECT_FALSE(protego_sys.lsm()->mount_policy().empty());
  EXPECT_FALSE(protego_sys.lsm()->bind_table().empty());
  EXPECT_FALSE(protego_sys.lsm()->delegation().rules.empty());
  EXPECT_TRUE(protego_sys.daemon()->errors().empty())
      << protego_sys.daemon()->errors().front();
}

TEST(SimSmoke, IdReportsIdentity) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/usr/bin/id", {"id"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode);
    EXPECT_EQ(out.out, "uid=1000 gid=1000 euid=1000 egid=1000\n") << SimModeName(mode);
  }
}

TEST(SimSmoke, UserMountsCdromInBothModes) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
    ASSERT_EQ(out.exit_code, 0) << SimModeName(mode) << ": " << out.err;
    EXPECT_NE(out.out.find("mounted on /media/cdrom"), std::string::npos);
    // The media contents are visible.
    auto readme = sys.kernel().ReadWholeFile(alice, "/media/cdrom/README");
    ASSERT_TRUE(readme.ok()) << SimModeName(mode);
    EXPECT_NE(readme.value().find("protego-install-media"), std::string::npos);
    // ... and the user can unmount ("user" option: the mounter may).
    auto um = sys.RunCapture(alice, "/bin/umount", {"umount", "/media/cdrom"});
    EXPECT_EQ(um.exit_code, 0) << SimModeName(mode) << ": " << um.err;
  }
}

TEST(SimSmoke, UserCannotMountRootOnlyEntry) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/sda2", "/mnt/backup"});
    EXPECT_NE(out.exit_code, 0) << SimModeName(mode);
    auto check = sys.kernel().vfs().FindMount("/mnt/backup");
    EXPECT_EQ(check, nullptr) << SimModeName(mode);
  }
}

TEST(SimSmoke, SetuidBitGrantsRootOnlyInLinuxMode) {
  SimSystem linux_sys(SimMode::kLinux);
  Task& alice = linux_sys.Login("alice");
  auto st = linux_sys.kernel().Stat(alice, "/bin/mount");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE((st.value().mode & kSetUidBit) != 0);

  SimSystem protego_sys(SimMode::kProtego);
  Task& bob = protego_sys.Login("bob");
  auto st2 = protego_sys.kernel().Stat(bob, "/bin/mount");
  ASSERT_TRUE(st2.ok());
  EXPECT_TRUE((st2.value().mode & kSetUidBit) == 0);
}

TEST(SimSmoke, PingWorksForUsersInBothModes) {
  for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
    SimSystem sys(mode);
    Task& alice = sys.Login("alice");
    auto out = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "2"});
    EXPECT_EQ(out.exit_code, 0) << SimModeName(mode) << ": " << out.err;
    EXPECT_NE(out.out.find("2 packets transmitted, 2 received"), std::string::npos)
        << SimModeName(mode) << "\n" << out.out;
  }
}

}  // namespace
}  // namespace protego
