// Macro workload engine acceptance: exact op bookkeeping, seed determinism
// across repeated runs and both stacks, overhead-report math, the parallel
// driver, and the reached-surface reduction the profiles feed.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/study/surface.h"
#include "src/workload/workload.h"

namespace protego {
namespace {

using workload::CompareStacks;
using workload::Mix;
using workload::MixFromName;
using workload::MixName;
using workload::MixReport;
using workload::OpsPerUnit;
using workload::OverheadRow;
using workload::RelativeOverheadPct;
using workload::RunWorkload;
using workload::SyscallProfile;
using workload::WorkloadSpec;

WorkloadSpec SmallSpec(Mix mix) {
  WorkloadSpec spec;
  spec.mix = mix;
  spec.tasks = 2;
  spec.total_ops = 2000;
  spec.seed = 11;
  return spec;
}

TEST(MacroWorkload, MixNamesRoundTrip) {
  for (int i = 0; i < workload::kMixCount; ++i) {
    Mix mix = static_cast<Mix>(i);
    EXPECT_EQ(MixFromName(MixName(mix)), mix);
    EXPECT_GT(OpsPerUnit(mix), 0u);
  }
  EXPECT_FALSE(MixFromName("postal").has_value());
}

// Every unit issues exactly OpsPerUnit syscalls — failures never
// short-circuit an op — so the budget arithmetic is exact on both stacks.
TEST(MacroWorkload, OpBookkeepingIsExactOnBothStacks) {
  for (int i = 0; i < workload::kMixCount; ++i) {
    for (SimMode mode : {SimMode::kLinux, SimMode::kProtego}) {
      MixReport r = RunWorkload(SmallSpec(static_cast<Mix>(i)), mode);
      EXPECT_GT(r.units, 0u) << MixName(r.mix);
      EXPECT_EQ(r.ops_issued, r.units * OpsPerUnit(r.mix))
          << MixName(r.mix) << " on " << SimModeName(mode);
      // The gate saw at least every issued op (plus nested Spawn syscalls).
      EXPECT_GE(r.profile.total(), r.ops_issued)
          << MixName(r.mix) << " on " << SimModeName(mode);
    }
  }
}

// The determinism contract: a fixed (spec, seed) replays to identical
// units, op counts, failure counts, and syscall profile — twice in a row.
TEST(MacroWorkload, SameSeedReplaysIdenticalMixAndMetrics) {
  for (Mix mix : {Mix::kCompile, Mix::kWebServe, Mix::kMail}) {
    WorkloadSpec spec = SmallSpec(mix);
    MixReport a = RunWorkload(spec, SimMode::kProtego);
    MixReport b = RunWorkload(spec, SimMode::kProtego);
    EXPECT_EQ(a.units, b.units) << MixName(mix);
    EXPECT_EQ(a.ops_issued, b.ops_issued) << MixName(mix);
    EXPECT_EQ(a.ops_failed, b.ops_failed) << MixName(mix);
    EXPECT_TRUE(a.profile == b.profile) << MixName(mix);
  }
}

// Both stacks replay the identical op stream, which is what makes the
// overhead column a like-for-like comparison.
TEST(MacroWorkload, StockAndProtegoIssueIdenticalOpStreams) {
  OverheadRow row = CompareStacks(SmallSpec(Mix::kWebServe));
  EXPECT_EQ(row.stock.units, row.protego.units);
  EXPECT_EQ(row.stock.ops_issued, row.protego.ops_issued);
  EXPECT_GT(row.stock.ops_per_sec, 0.0);
  EXPECT_GT(row.protego.ops_per_sec, 0.0);
}

// The mail mix is the paper's story in miniature: on stock Linux the
// delivery loop seteuid()s into each recipient; under Protego the session
// is the unprivileged exim user and both per-delivery transitions fail
// EPERM (the obviated transition), counted as failed ops.
TEST(MacroWorkload, MailMixObviatesSetuidTransitionsUnderProtego) {
  WorkloadSpec spec = SmallSpec(Mix::kMail);
  MixReport stock = RunWorkload(spec, SimMode::kLinux);
  MixReport protego = RunWorkload(spec, SimMode::kProtego);
  EXPECT_EQ(stock.ops_failed, 0u);
  EXPECT_EQ(protego.ops_failed, 2 * protego.units);
}

TEST(MacroWorkload, ParallelModeRunsTheSameDeterministicBudget) {
  WorkloadSpec spec = SmallSpec(Mix::kMail);
  spec.tasks = 4;
  MixReport det = RunWorkload(spec, SimMode::kProtego);
  spec.exec_mode = ExecMode::kParallel;
  MixReport par = RunWorkload(spec, SimMode::kProtego);
  // Budgets are per-task, resources task-private: even under free-running
  // threads the op stream and profile must match the deterministic run.
  EXPECT_EQ(par.units, det.units);
  EXPECT_EQ(par.ops_issued, det.ops_issued);
  EXPECT_EQ(par.ops_failed, det.ops_failed);
  EXPECT_TRUE(par.profile == det.profile);
}

// Honors PROTEGO_EXEC_MODE the way every harness does — under the CI
// parallel job this runs the engine on real OS threads.
TEST(MacroWorkload, RunsUnderAmbientExecMode) {
  WorkloadSpec spec = SmallSpec(Mix::kCompile);
  spec.exec_mode = ExecModeFromEnv();
  MixReport r = RunWorkload(spec, SimMode::kProtego);
  EXPECT_EQ(r.exec_mode, ExecModeFromEnv());
  EXPECT_EQ(r.ops_issued, r.units * OpsPerUnit(Mix::kCompile));
}

// --- Overhead-report math ----------------------------------------------------

TEST(OverheadMath, RelativeOverheadPct) {
  EXPECT_DOUBLE_EQ(RelativeOverheadPct(100.0, 80.0), 20.0);   // protego slower
  EXPECT_DOUBLE_EQ(RelativeOverheadPct(100.0, 125.0), -25.0); // protego faster
  EXPECT_DOUBLE_EQ(RelativeOverheadPct(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeOverheadPct(0.0, 50.0), 0.0);      // degenerate base
}

TEST(OverheadMath, CompareStacksUsesOpsPerSec) {
  OverheadRow row = CompareStacks(SmallSpec(Mix::kSetuidBurst));
  EXPECT_DOUBLE_EQ(
      row.overhead_pct,
      RelativeOverheadPct(row.stock.ops_per_sec, row.protego.ops_per_sec));
}

// --- Profiles and the reached-surface reduction ------------------------------

TEST(SyscallProfileTest, FormatsAndCounts) {
  SyscallProfile p;
  p.calls[static_cast<size_t>(Sysno::kOpen)] = 3;
  p.calls[static_cast<size_t>(Sysno::kStat)] = 8;
  EXPECT_EQ(p.total(), 11u);
  EXPECT_EQ(p.distinct(), 2u);
  EXPECT_EQ(p.Format(), "stat:8 open:3");
  EXPECT_EQ(p.FormatJson(), "{\"open\": 3, \"stat\": 8}");
  SyscallProfile q;
  q.calls[static_cast<size_t>(Sysno::kOpen)] = 1;
  p.Merge(q);
  EXPECT_EQ(p.calls[static_cast<size_t>(Sysno::kOpen)], 4u);
}

TEST(SurfaceStudy, WorkloadProfilesReduceTheSyscallSurface) {
  MixReport burst = RunWorkload(SmallSpec(Mix::kSetuidBurst), SimMode::kProtego);
  MixReport compile = RunWorkload(SmallSpec(Mix::kCompile), SimMode::kProtego);
  SurfaceProfile b = SurfaceFromProfile("setuid-burst", burst.profile);
  SurfaceProfile c = SurfaceFromProfile("compile", compile.profile);
  // The microburst touches a strictly smaller surface than the compile mix
  // (which execs children), and both are well below the full gate table —
  // the KASR-style reduction a deny-by-default filter would enforce.
  EXPECT_GT(b.reached.size(), 0u);
  EXPECT_LT(b.reached.size(), c.reached.size());
  EXPECT_LT(c.surface_fraction, 1.0);
  EXPECT_EQ(b.total_calls, burst.profile.total());
  std::string table = FormatSurfaceTable({b, c});
  EXPECT_NE(table.find("setuid-burst"), std::string::npos);
  EXPECT_NE(table.find("getpid"), std::string::npos);
}

}  // namespace
}  // namespace protego
