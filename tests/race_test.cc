// The TOCTTOU acceptance tests: the schedule explorer must FIND the
// symlink-swap race against the stock setuid system, report it as a
// deterministically replayable schedule, and find NO violating schedule for
// the same scenario under Protego. Plus the seed-replay determinism checks
// (same seed => identical syscall trace and identical metrics).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/conc/explore.h"
#include "src/conc/scheduler.h"
#include "src/sim/system.h"
#include "src/study/races.h"

namespace protego {
namespace {

using conc::DetScheduler;
using conc::ExploreMode;
using conc::ExploreOptions;
using conc::ExploreResult;
using conc::SchedMode;

ExploreOptions ExhaustiveOptions() {
  ExploreOptions opt;
  opt.mode = ExploreMode::kExhaustive;
  opt.preemption_bound = 1;  // one preemption: the swap inside the window
  opt.max_schedules = 5000;
  return opt;
}

TEST(TocttouRace, ExhaustiveSearchFindsRaceAgainstStockSetuid) {
  ExploreResult res = conc::Explore(
      MakeTocttouScenario(SimMode::kLinux, TocttouVariant::kStatThenOpen),
      ExhaustiveOptions());
  ASSERT_TRUE(res.violation_found)
      << "no violating interleaving in " << res.schedules_run << " schedules";
  EXPECT_NE(res.detail.find(kTocttouSecretPath), std::string::npos);
  EXPECT_FALSE(res.violating.choices.empty());
}

TEST(TocttouRace, ViolatingScheduleReplaysDeterministically) {
  auto factory = MakeTocttouScenario(SimMode::kLinux, TocttouVariant::kStatThenOpen);
  ExploreResult res = conc::Explore(factory, ExhaustiveOptions());
  ASSERT_TRUE(res.violation_found);

  // Replaying the reported schedule reproduces the violation every time,
  // with the identical decision sequence.
  std::vector<conc::SchedDecision> first;
  auto v1 = conc::Replay(factory, res.violating, &first);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, res.detail);
  for (int i = 0; i < 2; ++i) {
    std::vector<conc::SchedDecision> again;
    auto v = conc::Replay(factory, res.violating, &again);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, *v1);
    ASSERT_EQ(again.size(), first.size());
    for (size_t j = 0; j < first.size(); ++j) {
      EXPECT_EQ(again[j].chosen_index, first[j].chosen_index);
      EXPECT_EQ(again[j].runnable, first[j].runnable);
    }
  }
}

TEST(TocttouRace, AccessThenOpenVariantIsAlsoRacy) {
  ExploreResult res = conc::Explore(
      MakeTocttouScenario(SimMode::kLinux, TocttouVariant::kAccessThenOpen),
      ExhaustiveOptions());
  EXPECT_TRUE(res.violation_found);
}

TEST(TocttouRace, RandomSearchFindsRaceAndReportsReplayableSeed) {
  auto factory = MakeTocttouScenario(SimMode::kLinux, TocttouVariant::kStatThenOpen);
  ExploreOptions opt;
  opt.mode = ExploreMode::kRandom;
  opt.seed = 1;
  opt.num_seeds = 64;
  ExploreResult res = conc::Explore(factory, opt);
  ASSERT_TRUE(res.violation_found) << "no seed in [1,64] hit the race window";
  EXPECT_EQ(res.violating.mode, SchedMode::kRandom);

  // The seed alone replays the violation.
  auto v = conc::Replay(factory, res.violating);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, res.detail);
}

TEST(TocttouRace, ProtegoAdmitsNoViolatingSchedule) {
  // Identical scenario, Protego mode: the binary has no setuid bit, the
  // open runs with the invoker's fsuid, and DAC denies the swapped-in
  // secret at the use site. The FULL bounded schedule space is clean.
  for (TocttouVariant variant :
       {TocttouVariant::kStatThenOpen, TocttouVariant::kAccessThenOpen}) {
    ExploreResult res = conc::Explore(MakeTocttouScenario(SimMode::kProtego, variant),
                                      ExhaustiveOptions());
    EXPECT_FALSE(res.violation_found) << TocttouVariantName(variant) << ": " << res.detail;
    EXPECT_TRUE(res.exhausted) << TocttouVariantName(variant);
    EXPECT_GT(res.schedules_run, 1u);
  }
}

// --- Lost updates in the shared passwd database ------------------------------

TEST(PasswdLostUpdate, WithoutFlockExplorerFindsLostUpdate) {
  // Locking disabled (PROTEGO_NO_FLOCK=1): two interleaved whole-file
  // read-modify-writes of /etc/passwd can drop one editor's record.
  ExploreResult res =
      conc::Explore(MakePasswdLostUpdateScenario(/*with_flock=*/false), ExhaustiveOptions());
  ASSERT_TRUE(res.violation_found)
      << "no lost-update interleaving in " << res.schedules_run << " schedules";
  EXPECT_NE(res.detail.find("lost update"), std::string::npos) << res.detail;
}

TEST(PasswdLostUpdate, FlockMakesAllInterleavingsSafeAndDeadlockFree) {
  // Shipped behavior: chfn's update path takes an exclusive advisory flock
  // across the read-modify-write. The FULL bounded schedule space keeps both
  // edits, and every schedule terminates cleanly (no deadlock, no EDEADLK).
  ExploreResult res =
      conc::Explore(MakePasswdLostUpdateScenario(/*with_flock=*/true), ExhaustiveOptions());
  EXPECT_FALSE(res.violation_found) << res.detail;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules_run, 1u);
}

// --- Determinism of seeded runs ---------------------------------------------

TEST(ConcDeterminism, SameSeedSameSyscallTraceAndMetricsThreeRuns) {
  // Protego mode, because /proc/protego/metrics only exists there.
  auto factory = MakeTocttouScenario(SimMode::kProtego, TocttouVariant::kStatThenOpen);
  std::vector<std::string> traces;
  std::vector<std::string> metrics;
  for (int i = 0; i < 3; ++i) {
    auto run = factory();
    DetScheduler sched(&run->kernel().tracer());
    sched.set_mode(SchedMode::kRandom);
    sched.set_seed(424242);
    run->kernel().set_scheduler(&sched);
    run->RegisterTasks(sched);
    sched.Run();
    run->kernel().set_scheduler(nullptr);
    (void)run->CheckInvariant();  // reaps the children
    traces.push_back(run->kernel().tracer().Format());
    metrics.push_back(
        run->kernel().vfs().ReadFile("/proc/protego/metrics").value_or("<unreadable>"));
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
  ASSERT_NE(metrics[0], "<unreadable>");
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(metrics[0], metrics[2]);
}

}  // namespace
}  // namespace protego
