// Tests for the unified syscall entry path: per-syscall counters, the trace
// ring, and the seccomp-style filter — including the ordering guarantee that
// a filtered task is refused BEFORE any LSM hook runs.

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"
#include "src/sim/system.h"

namespace protego {
namespace {

// Spy module: counts every hook invocation it sees.
class SpyModule : public SecurityModule {
 public:
  const char* name() const override { return "spy"; }

  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) override {
    (void)task;
    (void)req;
    socket_create_calls++;
    return HookVerdict::kDefault;
  }

  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override {
    (void)task;
    (void)path;
    (void)inode;
    (void)may;
    // Keep the spy's counters exact: a cached verdict would skip this body.
    *cacheable = false;
    inode_permission_calls++;
    return HookVerdict::kDefault;
  }

  int socket_create_calls = 0;
  int inode_permission_calls = 0;
};

class SyscallGateTest : public ::testing::Test {
 protected:
  SyscallGateTest() {
    kernel_.lsm().Register(std::make_unique<CapabilityModule>());
    auto spy = std::make_unique<SpyModule>();
    spy_ = spy.get();
    kernel_.lsm().Register(std::move(spy));
    (void)kernel_.vfs().EnsureDirs("/etc");
    (void)kernel_.vfs().EnsureDirs("/tmp");
    kernel_.vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
    (void)kernel_.vfs().CreateFile("/etc/secret", 0600, kRootUid, kRootGid, "top");
  }

  Task& User(Uid uid) { return kernel_.CreateTask("u", Cred::ForUser(uid, uid), &terminal_); }

  Kernel kernel_;
  Terminal terminal_;
  SpyModule* spy_ = nullptr;
};

TEST_F(SyscallGateTest, CountersIncrementOnSuccessAndError) {
  Task& alice = User(1000);
  const SyscallGate& gate = kernel_.syscalls();
  uint64_t open_calls = gate.stats(Sysno::kOpen).calls;
  uint64_t open_errors = gate.stats(Sysno::kOpen).errors;

  ASSERT_TRUE(kernel_.Open(alice, "/tmp/f", kOWrOnly | kOCreat).ok());
  EXPECT_EQ(gate.stats(Sysno::kOpen).calls, open_calls + 1);
  EXPECT_EQ(gate.stats(Sysno::kOpen).errors, open_errors);

  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEACCES);
  EXPECT_EQ(gate.stats(Sysno::kOpen).calls, open_calls + 2);
  EXPECT_EQ(gate.stats(Sysno::kOpen).errors, open_errors + 1);
}

TEST_F(SyscallGateTest, GetPidRoutesThroughGate) {
  Task& alice = User(1000);
  uint64_t calls = kernel_.syscalls().stats(Sysno::kGetPid).calls;
  EXPECT_EQ(kernel_.GetPid(alice), alice.pid);
  EXPECT_EQ(kernel_.syscalls().stats(Sysno::kGetPid).calls, calls + 1);
}

TEST_F(SyscallGateTest, TraceRecordsCarryErrno) {
  Task& alice = User(1000);
  kernel_.syscalls().ClearTrace();
  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEACCES);
  auto trace = kernel_.syscalls().TraceSnapshot();
  ASSERT_FALSE(trace.empty());
  const auto& rec = trace.back();
  EXPECT_EQ(rec.nr, Sysno::kOpen);
  EXPECT_EQ(rec.err, Errno::kEACCES);
  EXPECT_EQ(rec.pid, alice.pid);
  EXPECT_FALSE(rec.seccomp_denied);
  EXPECT_NE(rec.args.find("/etc/secret"), std::string::npos);
}

TEST_F(SyscallGateTest, TraceRingIsBounded) {
  Task& alice = User(1000);
  kernel_.syscalls().ClearTrace();
  for (int i = 0; i < 300; ++i) {
    (void)kernel_.GetPid(alice);
  }
  EXPECT_EQ(kernel_.syscalls().TraceSnapshot().size(), SyscallGate::kTraceCapacity);
  EXPECT_EQ(kernel_.syscalls().trace_dropped(), 300 - SyscallGate::kTraceCapacity);
  // Oldest retained record is the one after the drops.
  EXPECT_EQ(kernel_.syscalls().TraceSnapshot().front().seq,
            300 - SyscallGate::kTraceCapacity);
}

TEST_F(SyscallGateTest, SeccompDenialHappensBeforeLsmHooks) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kRead, Sysno::kWrite, Sysno::kClose,
                                            Sysno::kGetPid})
                  .ok());
  int spy_before = spy_->socket_create_calls;
  uint64_t stack_before = kernel_.lsm().HookInvocations(LsmHook::kSocketCreate);
  kernel_.syscalls().ClearTrace();

  auto sock = kernel_.SocketCall(alice, kAfInet, kSockStream, 0);
  EXPECT_EQ(sock.code(), Errno::kEPERM);
  // Neither the spy module nor the stack saw a socket_create hook: the gate
  // refused at entry, before DAC/LSM.
  EXPECT_EQ(spy_->socket_create_calls, spy_before);
  EXPECT_EQ(kernel_.lsm().HookInvocations(LsmHook::kSocketCreate), stack_before);

  // The denial is visible in the trace ring and the per-syscall counters.
  auto trace = kernel_.syscalls().TraceSnapshot();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.back().nr, Sysno::kSocket);
  EXPECT_TRUE(trace.back().seccomp_denied);
  EXPECT_EQ(trace.back().err, Errno::kEPERM);
  EXPECT_GE(kernel_.syscalls().stats(Sysno::kSocket).seccomp_denied, 1u);

  // And in the audit log.
  bool audited = false;
  for (const std::string& line : kernel_.audit_log()) {
    if (line.find("seccomp") != std::string::npos &&
        line.find("socket") != std::string::npos) {
      audited = true;
    }
  }
  EXPECT_TRUE(audited);
}

TEST_F(SyscallGateTest, SeccompLatchIsOneWay) {
  Task& alice = User(1000);
  // First filter: file syscalls plus seccomp itself (so refiltering works).
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kOpen, Sysno::kRead, Sysno::kClose,
                                            Sysno::kSeccomp})
                  .ok());
  EXPECT_EQ(kernel_.SocketCall(alice, kAfInet, kSockStream, 0).code(), Errno::kEPERM);

  // "Widening" to include socket actually intersects: socket stays denied,
  // and open — absent from the second list — is now denied too.
  ASSERT_TRUE(
      kernel_.SeccompSetFilter(alice, {Sysno::kSocket, Sysno::kRead, Sysno::kSeccomp}).ok());
  EXPECT_EQ(kernel_.SocketCall(alice, kAfInet, kSockStream, 0).code(), Errno::kEPERM);
  EXPECT_EQ(kernel_.Open(alice, "/tmp/x", kOWrOnly | kOCreat).code(), Errno::kEPERM);

  // Dropping seccomp(2) from the allow list locks the filter permanently.
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  EXPECT_EQ(kernel_.SeccompSetFilter(alice, {Sysno::kRead, Sysno::kSeccomp}).code(),
            Errno::kEPERM);
}

TEST_F(SyscallGateTest, SeccompFilterInheritedAcrossSpawn) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/probe", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) -> int {
                                   auto sock = ctx.kernel.SocketCall(ctx.task, kAfInet,
                                                                     kSockStream, 0);
                                   return sock.code() == Errno::kEPERM ? 42 : 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kClone, Sysno::kExecve, Sysno::kRead,
                                            Sysno::kWrite, Sysno::kClose})
                  .ok());
  auto status = kernel_.Spawn(alice, "/bin/probe", {"probe"}, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 42);  // child inherited the filter: socket EPERM
}

TEST_F(SyscallGateTest, FilteredGetPidReturnsMinusOne) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  EXPECT_EQ(kernel_.GetPid(alice), -1);
}

TEST_F(SyscallGateTest, DisabledGateSkipsFilteringAndAccounting) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  kernel_.syscalls().set_enabled(false);
  // The no-gate baseline neither enforces the filter nor counts the call.
  uint64_t calls = kernel_.syscalls().stats(Sysno::kGetPid).calls;
  EXPECT_EQ(kernel_.GetPid(alice), alice.pid);
  EXPECT_EQ(kernel_.syscalls().stats(Sysno::kGetPid).calls, calls);
  kernel_.syscalls().set_enabled(true);
  EXPECT_EQ(kernel_.GetPid(alice), -1);
}

TEST_F(SyscallGateTest, AuditRingCountsDrops) {
  EXPECT_EQ(kernel_.audit_dropped(), 0u);
  for (int i = 0; i < 600; ++i) {
    kernel_.Audit("record");
  }
  EXPECT_EQ(kernel_.audit_log().size(), 512u);
  EXPECT_EQ(kernel_.audit_dropped(), 600u - 512u);
}

TEST(SyscallGateProcTest, StatsAndTraceExposedUnderProc) {
  SimSystem sim(SimMode::kProtego);
  Task& alice = sim.Login("alice");
  (void)sim.kernel().GetPid(alice);

  // syscall_stats is world-readable and nonzero once anything ran.
  auto stats = sim.kernel().ReadWholeFile(alice, "/proc/protego/syscall_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("getpid"), std::string::npos);
  EXPECT_NE(stats.value().find("total: calls="), std::string::npos);

  // The trace ring is root-only.
  EXPECT_EQ(sim.kernel().ReadWholeFile(alice, "/proc/protego/trace").code(), Errno::kEACCES);
  Task& root = sim.kernel().CreateTask("sh", Cred::Root(), alice.terminal);
  auto trace = sim.kernel().ReadWholeFile(root, "/proc/protego/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("getpid"), std::string::npos);

  // "clear" empties it; the next read shows only the syscalls of the read
  // path itself.
  ASSERT_TRUE(sim.kernel().WriteWholeFile(root, "/proc/protego/trace", "clear").ok());
  EXPECT_TRUE(sim.syscalls().TraceSnapshot().size() < 10);
}

TEST(SyscallGateSandboxTest, SandboxDropsSocketAfterSeccomp) {
  SimSystem sim(SimMode::kProtego);
  Task& alice = sim.Login("alice");
  auto run = sim.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("seccomp filter installed"), std::string::npos);
  EXPECT_NE(run.out.find("socket after seccomp denied (EPERM)"), std::string::npos);
  // The denial shows up in the kernel's trace ring.
  bool traced = false;
  for (const auto& rec : sim.syscalls().TraceSnapshot()) {
    if (rec.nr == Sysno::kSocket && rec.seccomp_denied) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

}  // namespace
}  // namespace protego
