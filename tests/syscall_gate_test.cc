// Tests for the unified syscall entry path: per-syscall counters, the trace
// ring, and the seccomp-style filter — including the ordering guarantee that
// a filtered task is refused BEFORE any LSM hook runs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/strings.h"
#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"
#include "src/sim/system.h"

namespace protego {
namespace {

// Spy module: counts every hook invocation it sees.
class SpyModule : public SecurityModule {
 public:
  const char* name() const override { return "spy"; }

  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) override {
    (void)task;
    (void)req;
    socket_create_calls++;
    return HookVerdict::kDefault;
  }

  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override {
    (void)task;
    (void)path;
    (void)inode;
    (void)may;
    // Keep the spy's counters exact: a cached verdict would skip this body.
    *cacheable = false;
    inode_permission_calls++;
    return HookVerdict::kDefault;
  }

  int socket_create_calls = 0;
  int inode_permission_calls = 0;
};

class SyscallGateTest : public ::testing::Test {
 protected:
  SyscallGateTest() {
    kernel_.lsm().Register(std::make_unique<CapabilityModule>());
    auto spy = std::make_unique<SpyModule>();
    spy_ = spy.get();
    kernel_.lsm().Register(std::move(spy));
    (void)kernel_.vfs().EnsureDirs("/etc");
    (void)kernel_.vfs().EnsureDirs("/tmp");
    kernel_.vfs().Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
    (void)kernel_.vfs().CreateFile("/etc/secret", 0600, kRootUid, kRootGid, "top");
  }

  Task& User(Uid uid) { return kernel_.CreateTask("u", Cred::ForUser(uid, uid), &terminal_); }

  Kernel kernel_;
  Terminal terminal_;
  SpyModule* spy_ = nullptr;
};

TEST_F(SyscallGateTest, CountersIncrementOnSuccessAndError) {
  Task& alice = User(1000);
  const SyscallGate& gate = kernel_.syscalls();
  uint64_t open_calls = gate.stats(Sysno::kOpen).calls;
  uint64_t open_errors = gate.stats(Sysno::kOpen).errors;

  ASSERT_TRUE(kernel_.Open(alice, "/tmp/f", kOWrOnly | kOCreat).ok());
  EXPECT_EQ(gate.stats(Sysno::kOpen).calls, open_calls + 1);
  EXPECT_EQ(gate.stats(Sysno::kOpen).errors, open_errors);

  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEACCES);
  EXPECT_EQ(gate.stats(Sysno::kOpen).calls, open_calls + 2);
  EXPECT_EQ(gate.stats(Sysno::kOpen).errors, open_errors + 1);
}

TEST_F(SyscallGateTest, GetPidRoutesThroughGate) {
  Task& alice = User(1000);
  uint64_t calls = kernel_.syscalls().stats(Sysno::kGetPid).calls;
  EXPECT_EQ(kernel_.GetPid(alice), alice.pid);
  EXPECT_EQ(kernel_.syscalls().stats(Sysno::kGetPid).calls, calls + 1);
}

TEST_F(SyscallGateTest, TraceRecordsCarryErrno) {
  Task& alice = User(1000);
  kernel_.syscalls().ClearTrace();
  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEACCES);
  auto trace = kernel_.syscalls().TraceSnapshot();
  ASSERT_FALSE(trace.empty());
  const auto& rec = trace.back();
  EXPECT_EQ(rec.nr, Sysno::kOpen);
  EXPECT_EQ(rec.err, Errno::kEACCES);
  EXPECT_EQ(rec.pid, alice.pid);
  EXPECT_FALSE(rec.seccomp_denied);
  EXPECT_NE(rec.args.find("/etc/secret"), std::string::npos);
}

TEST_F(SyscallGateTest, TraceRingIsBounded) {
  Task& alice = User(1000);
  kernel_.syscalls().ClearTrace();
  for (int i = 0; i < 300; ++i) {
    (void)kernel_.GetPid(alice);
  }
  EXPECT_EQ(kernel_.syscalls().TraceSnapshot().size(), SyscallGate::kTraceCapacity);
  EXPECT_EQ(kernel_.syscalls().trace_dropped(), 300 - SyscallGate::kTraceCapacity);
  // Oldest retained record is the one after the drops.
  EXPECT_EQ(kernel_.syscalls().TraceSnapshot().front().seq,
            300 - SyscallGate::kTraceCapacity);
}

TEST_F(SyscallGateTest, SeccompDenialHappensBeforeLsmHooks) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kRead, Sysno::kWrite, Sysno::kClose,
                                            Sysno::kGetPid})
                  .ok());
  int spy_before = spy_->socket_create_calls;
  uint64_t stack_before = kernel_.lsm().HookInvocations(LsmHook::kSocketCreate);
  kernel_.syscalls().ClearTrace();

  auto sock = kernel_.SocketCall(alice, kAfInet, kSockStream, 0);
  EXPECT_EQ(sock.code(), Errno::kEPERM);
  // Neither the spy module nor the stack saw a socket_create hook: the gate
  // refused at entry, before DAC/LSM.
  EXPECT_EQ(spy_->socket_create_calls, spy_before);
  EXPECT_EQ(kernel_.lsm().HookInvocations(LsmHook::kSocketCreate), stack_before);

  // The denial is visible in the trace ring and the per-syscall counters.
  auto trace = kernel_.syscalls().TraceSnapshot();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.back().nr, Sysno::kSocket);
  EXPECT_TRUE(trace.back().seccomp_denied);
  EXPECT_EQ(trace.back().err, Errno::kEPERM);
  EXPECT_GE(kernel_.syscalls().stats(Sysno::kSocket).seccomp_denied, 1u);

  // And in the audit log.
  bool audited = false;
  for (const std::string& line : kernel_.audit_log()) {
    if (line.find("seccomp") != std::string::npos &&
        line.find("socket") != std::string::npos) {
      audited = true;
    }
  }
  EXPECT_TRUE(audited);
}

TEST_F(SyscallGateTest, SeccompLatchIsOneWay) {
  Task& alice = User(1000);
  // First filter: file syscalls plus seccomp itself (so refiltering works).
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kOpen, Sysno::kRead, Sysno::kClose,
                                            Sysno::kSeccomp})
                  .ok());
  EXPECT_EQ(kernel_.SocketCall(alice, kAfInet, kSockStream, 0).code(), Errno::kEPERM);

  // "Widening" to include socket actually intersects: socket stays denied,
  // and open — absent from the second list — is now denied too.
  ASSERT_TRUE(
      kernel_.SeccompSetFilter(alice, {Sysno::kSocket, Sysno::kRead, Sysno::kSeccomp}).ok());
  EXPECT_EQ(kernel_.SocketCall(alice, kAfInet, kSockStream, 0).code(), Errno::kEPERM);
  EXPECT_EQ(kernel_.Open(alice, "/tmp/x", kOWrOnly | kOCreat).code(), Errno::kEPERM);

  // Dropping seccomp(2) from the allow list locks the filter permanently.
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  EXPECT_EQ(kernel_.SeccompSetFilter(alice, {Sysno::kRead, Sysno::kSeccomp}).code(),
            Errno::kEPERM);
}

TEST_F(SyscallGateTest, SeccompFilterInheritedAcrossSpawn) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/probe", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) -> int {
                                   auto sock = ctx.kernel.SocketCall(ctx.task, kAfInet,
                                                                     kSockStream, 0);
                                   return sock.code() == Errno::kEPERM ? 42 : 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_
                  .SeccompSetFilter(alice, {Sysno::kClone, Sysno::kExecve, Sysno::kRead,
                                            Sysno::kWrite, Sysno::kClose})
                  .ok());
  auto status = kernel_.Spawn(alice, "/bin/probe", {"probe"}, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 42);  // child inherited the filter: socket EPERM
}

TEST_F(SyscallGateTest, FilteredGetPidReturnsMinusOne) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  EXPECT_EQ(kernel_.GetPid(alice), -1);
}

TEST_F(SyscallGateTest, DisabledGateSkipsFilteringAndAccounting) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilter(alice, {Sysno::kRead}).ok());
  kernel_.syscalls().set_enabled(false);
  // The no-gate baseline neither enforces the filter nor counts the call.
  uint64_t calls = kernel_.syscalls().stats(Sysno::kGetPid).calls;
  EXPECT_EQ(kernel_.GetPid(alice), alice.pid);
  EXPECT_EQ(kernel_.syscalls().stats(Sysno::kGetPid).calls, calls);
  kernel_.syscalls().set_enabled(true);
  EXPECT_EQ(kernel_.GetPid(alice), -1);
}

TEST_F(SyscallGateTest, AuditRingCountsDrops) {
  EXPECT_EQ(kernel_.audit_dropped(), 0u);
  for (int i = 0; i < 600; ++i) {
    kernel_.Audit("record");
  }
  EXPECT_EQ(kernel_.audit_log().size(), 512u);
  EXPECT_EQ(kernel_.audit_dropped(), 600u - 512u);
}

// --- Argument-aware predicate filters ----------------------------------------

// A filter spec equivalent to what the synthesizer emits for a small
// utility: open restricted to two path classes (one with a flags mask),
// read/write/close fd-bounded, plus the plumbing syscalls.
SeccompFilter::Spec PredicateSpec() {
  SeccompFilter::Spec spec;
  for (Sysno nr : {Sysno::kOpen, Sysno::kRead, Sysno::kWrite, Sysno::kClose,
                   Sysno::kGetPid, Sysno::kSeccomp, Sysno::kClone, Sysno::kExecve}) {
    spec.allowed.set(static_cast<size_t>(nr));
  }
  spec.path_classes = {{"/tmp", 1}, {"/etc/motd", 2}};
  spec.rules[static_cast<uint16_t>(Sysno::kOpen)] = {
      // /tmp/* with any flags; /etc/motd read-only.
      {{{kSeccompArgPath, SeccompCmp::kEq, 1, 0}}},
      {{{kSeccompArgPath, SeccompCmp::kEq, 2, 0},
        {1, SeccompCmp::kMaskedEq, static_cast<uint64_t>(kORdOnly),
         static_cast<uint64_t>(kOAccMode)}}},
  };
  spec.rules[static_cast<uint16_t>(Sysno::kWrite)] = {{{{0, SeccompCmp::kLt, 8, 0}}}};
  return spec;
}

TEST(SeccompPredicateTest, SpecRoundTripsThroughRenderAndParse) {
  auto filter = SeccompFilter::FromSpec(PredicateSpec());
  ASSERT_TRUE(filter.ok());
  std::string text = filter.value().Render();
  auto reparsed = SeccompFilter::ParseSpec(text);
  ASSERT_TRUE(reparsed.ok());
  auto rebuilt = SeccompFilter::FromSpec(reparsed.value());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().Render(), text);  // byte-stable fixed point
}

TEST_F(SyscallGateTest, PredicateFilterEnforcesPathClassesAndFlags) {
  (void)kernel_.vfs().CreateFile("/etc/motd", 0644, kRootUid, kRootGid, "hi");
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, PredicateSpec()).ok());

  ASSERT_TRUE(kernel_.Open(alice, "/tmp/scratch", kOWrOnly | kOCreat).ok());
  ASSERT_TRUE(kernel_.Open(alice, "/etc/motd", kORdOnly).ok());
  // Write-open of the read-only class and any open outside both classes are
  // refused at the gate, before DAC/LSM ever see the call.
  int spy_before = spy_->inode_permission_calls;
  EXPECT_EQ(kernel_.Open(alice, "/etc/motd", kORdWr).code(), Errno::kEPERM);
  EXPECT_EQ(kernel_.Open(alice, "/etc/secret", kORdOnly).code(), Errno::kEPERM);
  EXPECT_EQ(spy_->inode_permission_calls, spy_before);
  // Predicate evaluation is visible in the per-syscall rule-eval counter.
  EXPECT_GT(kernel_.syscalls().stats(Sysno::kOpen).rule_evals, 0u);
}

TEST_F(SyscallGateTest, PredicateLatchTightensAndNeverWidens) {
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, PredicateSpec()).ok());
  ASSERT_TRUE(kernel_.Open(alice, "/tmp/a", kOWrOnly | kOCreat).ok());

  // Second install claims open of anything read-only. The latch intersects:
  // only the conjunction (in /tmp AND read-only, or /etc/motd read-only)
  // survives.
  SeccompFilter::Spec narrower;
  for (Sysno nr : {Sysno::kOpen, Sysno::kRead, Sysno::kClose, Sysno::kGetPid,
                   Sysno::kSeccomp}) {
    narrower.allowed.set(static_cast<size_t>(nr));
  }
  narrower.rules[static_cast<uint16_t>(Sysno::kOpen)] = {
      {{{1, SeccompCmp::kMaskedEq, static_cast<uint64_t>(kORdOnly),
         static_cast<uint64_t>(kOAccMode)}}}};
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, narrower).ok());

  EXPECT_TRUE(kernel_.Open(alice, "/tmp/a", kORdOnly).ok());
  EXPECT_EQ(kernel_.Open(alice, "/tmp/b", kOWrOnly | kOCreat).code(), Errno::kEPERM);
  // write was dropped from the second allow-list: gone despite rules on the
  // first install.
  EXPECT_EQ(kernel_.Write(alice, 0, "x").code(), Errno::kEPERM);
}

TEST_F(SyscallGateTest, IntersectionRuleExplosionFailsClosed) {
  // Two 9-rule disjunctions over DIFFERENT argument slots cross-multiply to
  // 81 satisfiable conjunctions > kMaxRulesPerSysno (64) — the latch must
  // deny the syscall outright rather than silently truncate the rule list.
  // (Same-slot eq rules would be pruned as contradictions and stay small.)
  auto many_rules = [](uint8_t arg) {
    SeccompFilter::Spec spec;
    spec.allowed.set(static_cast<size_t>(Sysno::kIoctl));
    spec.allowed.set(static_cast<size_t>(Sysno::kSeccomp));
    spec.allowed.set(static_cast<size_t>(Sysno::kGetPid));
    std::vector<SeccompRule> rules;
    for (uint64_t i = 0; i < 9; ++i) {
      rules.push_back({{{arg, SeccompCmp::kEq, i, 0}}});
    }
    spec.rules[static_cast<uint16_t>(Sysno::kIoctl)] = rules;
    return spec;
  };
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, many_rules(0)).ok());
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, many_rules(1)).ok());
  // (arg0=4, arg1=4) would survive a true intersection, but the capped
  // cross product fails closed.
  EXPECT_EQ(kernel_.Ioctl(alice, 4, 4, "").code(), Errno::kEPERM);
  EXPECT_EQ(kernel_.GetPid(alice), alice.pid);  // untouched syscalls still work
}

TEST_F(SyscallGateTest, PredicateFilterInheritedAcrossSpawn) {
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/probe", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) -> int {
                                   // Inherited predicates: /tmp writable,
                                   // everything else EPERM at the gate.
                                   auto ok = ctx.kernel.Open(ctx.task, "/tmp/child",
                                                             kOWrOnly | kOCreat);
                                   auto denied =
                                       ctx.kernel.Open(ctx.task, "/etc/secret", kORdOnly);
                                   return ok.ok() && denied.code() == Errno::kEPERM ? 42 : 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, PredicateSpec()).ok());
  auto status = kernel_.Spawn(alice, "/bin/probe", {"probe"}, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 42);
}

TEST_F(SyscallGateTest, RegisteredBinaryFilterReplacesOnExec) {
  // Exec into a registered binary REPLACES the task's filter (AppArmor-style
  // profile transition) — the latch only governs self-installs. The probe
  // can open /etc/motd even though the parent's filter cannot, and the
  // parent's own filter is untouched afterwards.
  (void)kernel_.vfs().CreateFile("/etc/motd", 0644, kRootUid, kRootGid, "hi");
  SeccompFilter::Spec probe_spec;
  for (Sysno nr : {Sysno::kOpen, Sysno::kRead, Sysno::kClose}) {
    probe_spec.allowed.set(static_cast<size_t>(nr));
  }
  auto probe_filter = SeccompFilter::FromSpec(probe_spec);
  ASSERT_TRUE(probe_filter.ok());
  kernel_.RegisterBinaryFilter("/bin/probe", probe_filter.value());
  ASSERT_TRUE(kernel_
                  .InstallBinary("/bin/probe", 0755, kRootUid, kRootGid,
                                 [](ProcessContext& ctx) -> int {
                                   auto open = ctx.kernel.Open(ctx.task, "/etc/motd",
                                                               kORdOnly);
                                   auto sock = ctx.kernel.SocketCall(ctx.task, kAfInet,
                                                                     kSockStream, 0);
                                   return open.ok() && sock.code() == Errno::kEPERM ? 42
                                                                                    : 0;
                                 })
                  .ok());
  Task& alice = User(1000);
  SeccompFilter::Spec parent_spec = PredicateSpec();  // denies /etc/motd rw, no socket
  ASSERT_TRUE(kernel_.SeccompSetFilterSpec(alice, parent_spec).ok());
  auto status = kernel_.Spawn(alice, "/bin/probe", {"probe"}, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 42);
  // Parent still constrained by its own (unreplaced) filter.
  EXPECT_EQ(kernel_.Open(alice, "/etc/motd", kORdWr).code(), Errno::kEPERM);
  EXPECT_TRUE(kernel_.Open(alice, "/tmp/parent", kOWrOnly | kOCreat).ok());
}

TEST_F(SyscallGateTest, PredicateEnforcementIsThreadSafeUnderRealThreads) {
  // kParallel-shaped regression: several tasks, each with the predicate
  // filter, hammer allowed and denied paths from real OS threads. Verdicts
  // must stay per-task correct (no cross-task filter bleed) and TSan-clean.
  std::vector<Task*> tasks;
  for (int t = 0; t < 4; ++t) {
    Task& task = User(1000 + t);
    ASSERT_TRUE(kernel_.SeccompSetFilterSpec(task, PredicateSpec()).ok());
    tasks.push_back(&task);
  }
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (Task* task : tasks) {
    threads.emplace_back([this, task, &wrong] {
      for (int i = 0; i < 200; ++i) {
        auto ok = kernel_.Open(*task, StrFormat("/tmp/t%d", task->pid), kOWrOnly | kOCreat);
        if (!ok.ok() && ok.code() != Errno::kEEXIST) {
          ++wrong;
        }
        if (ok.ok()) {
          (void)kernel_.Close(*task, ok.value());
        }
        if (kernel_.Open(*task, "/etc/secret", kORdOnly).code() != Errno::kEPERM) {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(wrong.load(), 0);
}

TEST(SyscallGateProcTest, StatsAndTraceExposedUnderProc) {
  SimSystem sim(SimMode::kProtego);
  Task& alice = sim.Login("alice");
  (void)sim.kernel().GetPid(alice);

  // syscall_stats is world-readable and nonzero once anything ran.
  auto stats = sim.kernel().ReadWholeFile(alice, "/proc/protego/syscall_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("getpid"), std::string::npos);
  EXPECT_NE(stats.value().find("total: calls="), std::string::npos);

  // The trace ring is root-only.
  EXPECT_EQ(sim.kernel().ReadWholeFile(alice, "/proc/protego/trace").code(), Errno::kEACCES);
  Task& root = sim.kernel().CreateTask("sh", Cred::Root(), alice.terminal);
  auto trace = sim.kernel().ReadWholeFile(root, "/proc/protego/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("getpid"), std::string::npos);

  // "clear" empties it; the next read shows only the syscalls of the read
  // path itself.
  ASSERT_TRUE(sim.kernel().WriteWholeFile(root, "/proc/protego/trace", "clear").ok());
  EXPECT_TRUE(sim.syscalls().TraceSnapshot().size() < 10);
}

TEST(SyscallGateProcTest, SeccompFiltersExposedUnderProcWithPidFilter) {
  SimSystem sim(SimMode::kProtego);
  Task& alice = sim.Login("alice");
  Task& bob = sim.Login("bob");
  // Root-only (checked before either task carries a gate filter of its own).
  EXPECT_EQ(sim.kernel().ReadWholeFile(alice, "/proc/protego/seccomp").code(),
            Errno::kEACCES);
  SeccompFilter::Spec spec;
  for (Sysno nr : {Sysno::kRead, Sysno::kWrite, Sysno::kClose}) {
    spec.allowed.set(static_cast<size_t>(nr));
  }
  ASSERT_TRUE(sim.kernel().SeccompSetFilterSpec(alice, spec).ok());
  spec.allowed.set(static_cast<size_t>(Sysno::kGetPid));
  ASSERT_TRUE(sim.kernel().SeccompSetFilterSpec(bob, spec).ok());

  // One section per filtered task, rendered re-installable.
  Task& root = sim.kernel().CreateTask("sh", Cred::Root(), alice.terminal);
  auto all = sim.kernel().ReadWholeFile(root, "/proc/protego/seccomp");
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all.value().find(StrFormat("# pid=%d", alice.pid)), std::string::npos);
  EXPECT_NE(all.value().find(StrFormat("# pid=%d", bob.pid)), std::string::npos);
  EXPECT_NE(all.value().find("allow read"), std::string::npos);

  // "?pid=N" narrows reads to one task; "?" clears the filter again.
  ASSERT_TRUE(sim.kernel()
                  .WriteWholeFile(root, "/proc/protego/seccomp",
                                  StrFormat("?pid=%d", alice.pid))
                  .ok());
  auto one = sim.kernel().ReadWholeFile(root, "/proc/protego/seccomp");
  ASSERT_TRUE(one.ok());
  EXPECT_NE(one.value().find(StrFormat("# pid=%d", alice.pid)), std::string::npos);
  EXPECT_EQ(one.value().find(StrFormat("# pid=%d", bob.pid)), std::string::npos);
  ASSERT_TRUE(sim.kernel().WriteWholeFile(root, "/proc/protego/seccomp", "?").ok());
  auto again = sim.kernel().ReadWholeFile(root, "/proc/protego/seccomp");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().find(StrFormat("# pid=%d", bob.pid)), std::string::npos);

  // Junk writes are EINVAL and leave the read filter untouched.
  EXPECT_EQ(sim.kernel().WriteWholeFile(root, "/proc/protego/seccomp", "?pid=abc").code(),
            Errno::kEINVAL);
  EXPECT_EQ(sim.kernel().WriteWholeFile(root, "/proc/protego/seccomp", "gibberish").code(),
            Errno::kEINVAL);
}

TEST(SyscallGateSandboxTest, SandboxDropsSocketAfterSeccomp) {
  SimSystem sim(SimMode::kProtego);
  Task& alice = sim.Login("alice");
  auto run = sim.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("seccomp filter installed"), std::string::npos);
  EXPECT_NE(run.out.find("socket after seccomp denied (EPERM)"), std::string::npos);
  // The denial shows up in the kernel's trace ring.
  bool traced = false;
  for (const auto& rec : sim.syscalls().TraceSnapshot()) {
    if (rec.nr == Sysno::kSocket && rec.seccomp_denied) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

}  // namespace
}  // namespace protego
