// Remaining-corner tests: terminals, fd tables, ProcessContext helpers,
// nested-mount paths, and ioctl dispatch edges.

#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"
#include "src/sim/system.h"

namespace protego {
namespace {

TEST(TerminalTest, InputQueueAndOutputCapture) {
  Terminal term;
  EXPECT_FALSE(term.ReadLine().has_value());
  term.QueueInput("first");
  term.QueueInput("second");
  EXPECT_EQ(term.ReadLine(), "first");
  EXPECT_EQ(term.ReadLine(), "second");
  EXPECT_FALSE(term.ReadLine().has_value());
  term.Write("hello ");
  term.Write("world");
  EXPECT_EQ(term.output(), "hello world");
  term.ClearOutput();
  EXPECT_TRUE(term.output().empty());
}

TEST(FdTableTest, InstallGetCloseSemantics) {
  FdTable table;
  FdEntry a;
  a.kind = FdEntry::Kind::kSocket;
  a.socket_id = 42;
  int fd_a = table.Install(a);
  FdEntry b;
  b.cloexec = true;
  int fd_b = table.Install(b);
  EXPECT_GE(fd_a, 3);  // 0/1/2 are stdio
  EXPECT_EQ(fd_b, fd_a + 1);
  ASSERT_NE(table.Get(fd_a), nullptr);
  EXPECT_EQ(table.Get(fd_a)->socket_id, 42);
  EXPECT_EQ(table.Get(999), nullptr);
  table.CloseOnExec();
  EXPECT_EQ(table.Get(fd_b), nullptr);  // cloexec dropped
  EXPECT_NE(table.Get(fd_a), nullptr);  // survivor
  EXPECT_TRUE(table.Close(fd_a).ok());
  EXPECT_EQ(table.Close(fd_a).code(), Errno::kEBADF);
}

TEST(ProcessContextTest, FlagParsing) {
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  ProcessContext ctx{sys.kernel(), alice,
                     {"prog", "--user=bob", "--verbose", "positional"},
                     {}};
  EXPECT_EQ(ctx.Flag("user"), "bob");
  EXPECT_FALSE(ctx.Flag("missing").has_value());
  EXPECT_TRUE(ctx.HasFlag("verbose"));
  EXPECT_FALSE(ctx.HasFlag("user"));  // --user=... is not a bare flag
}

TEST(VfsNestedMounts, PathsResolveThroughTwoLevels) {
  Vfs vfs;
  ASSERT_TRUE(vfs.EnsureDirs("/outer").ok());
  ASSERT_TRUE(vfs.AddMount("/outer", "src1", "tmpfs", {}, 0, [](Vnode* root) {
                   Inode dir;
                   dir.mode = kIfDir | 0755;
                   (void)root->AddChild("inner", std::move(dir));
                 }).ok());
  ASSERT_TRUE(vfs.AddMount("/outer/inner", "src2", "tmpfs", {}, 0, [](Vnode* root) {
                   Inode f;
                   f.mode = kIfReg | 0644;
                   f.data = "deep";
                   (void)root->AddChild("f", std::move(f));
                 }).ok());
  auto node = vfs.Resolve("/outer/inner/f");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(vfs.PathOf(node.value()), "/outer/inner/f");
  EXPECT_EQ(vfs.ReadFile("/outer/inner/f").value(), "deep");
  // Inner must unmount before outer content reappears.
  ASSERT_TRUE(vfs.RemoveMount("/outer/inner").ok());
  EXPECT_EQ(vfs.Resolve("/outer/inner/f").code(), Errno::kENOENT);
  ASSERT_TRUE(vfs.RemoveMount("/outer").ok());
}

TEST(IoctlDispatch, EdgeErrnos) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  // ioctl on a regular file: ENOTTY.
  auto fd = k.Open(root, "/etc/hosts", kORdOnly);
  EXPECT_EQ(k.Ioctl(root, fd.value(), kPppIocNewUnit, "").code(), Errno::kENOTTY);
  // ioctl on a bad fd: EBADF.
  EXPECT_EQ(k.Ioctl(root, 999, kPppIocNewUnit, "").code(), Errno::kEBADF);
  // Unknown request on a socket: ENOTTY.
  auto sock = k.SocketCall(root, kAfInet, kSockDgram, 0);
  EXPECT_EQ(k.Ioctl(root, sock.value(), 0xDEAD, "").code(), Errno::kENOTTY);
  // Malformed route spec: EINVAL.
  EXPECT_EQ(k.Ioctl(root, sock.value(), kSiocAddRt, "nonsense").code(), Errno::kEINVAL);
  // Device without a driver: ENOTTY.
  auto dev = k.Open(root, "/dev/cdrom", kORdWr);
  EXPECT_EQ(k.Ioctl(root, dev.value(), 0x1234, "").code(), Errno::kENOTTY);
}

TEST(SimBootstrap, ModesShareTheSameUserset) {
  SimSystem linux_sys(SimMode::kLinux);
  SimSystem setcap_sys(SimMode::kSetcap);
  SimSystem protego_sys(SimMode::kProtego);
  for (SimSystem* sys : {&linux_sys, &setcap_sys, &protego_sys}) {
    EXPECT_EQ(sys->users().size(), 6u);
    EXPECT_NE(sys->FindUser("alice"), nullptr);
    EXPECT_EQ(sys->FindUser("alice")->uid, 1000u);
    EXPECT_EQ(sys->FindUser("mallory"), nullptr);
  }
  // Only the Protego system runs the trusted services and fragments.
  EXPECT_EQ(linux_sys.daemon(), nullptr);
  EXPECT_EQ(setcap_sys.lsm(), nullptr);
  ASSERT_NE(protego_sys.daemon(), nullptr);
  Task& root = protego_sys.Login("root");
  EXPECT_TRUE(protego_sys.kernel().Stat(root, "/etc/passwds/alice").ok());
  Task& lroot = linux_sys.Login("root");
  EXPECT_EQ(linux_sys.kernel().Stat(lroot, "/etc/passwds").code(), Errno::kENOENT);
}

TEST(HookVerdictNames, RenderForAudit) {
  EXPECT_STREQ(HookVerdictName(HookVerdict::kAllow), "ALLOW");
  EXPECT_STREQ(HookVerdictName(HookVerdict::kDeny), "DENY");
  EXPECT_STREQ(HookVerdictName(HookVerdict::kDefault), "DEFAULT");
  EXPECT_STREQ(FsEventName(FsEvent::kModified), "MODIFIED");
}

}  // namespace
}  // namespace protego
