// Property tests over the configuration formats (serialize/parse fixpoints,
// comment-insensitivity) and randomized mount/umount sequences.

#include <gtest/gtest.h>

#include "src/base/lexer.h"
#include "src/base/strings.h"
#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/sudoers.h"
#include "src/sim/system.h"

namespace protego {
namespace {

uint64_t Next(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Name(uint64_t* s) {
  static const char* kNames[] = {"alice", "bob", "charlie", "dave", "erin", "frank"};
  return kNames[Next(s) % 6];
}

class FstabFixpoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FstabFixpoint, SerializeParseSerializeIsStable) {
  uint64_t seed = GetParam() * 31337;
  std::vector<FstabEntry> entries;
  size_t n = Next(&seed) % 8 + 1;
  for (size_t i = 0; i < n; ++i) {
    FstabEntry e;
    e.device = "/dev/dev" + std::to_string(Next(&seed) % 10);
    e.mountpoint = "/mnt/m" + std::to_string(i);
    e.fstype = (Next(&seed) % 2) ? "ext4" : "iso9660";
    e.options = {"ro"};
    if (Next(&seed) % 2) {
      e.options.push_back("user");
    }
    if (Next(&seed) % 3 == 0) {
      e.options.push_back("nosuid");
    }
    entries.push_back(std::move(e));
  }
  std::string once = SerializeFstab(entries);
  auto parsed = ParseFstab(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(SerializeFstab(parsed.value()), once);
  // Comments and blank lines are semantically invisible.
  std::string noisy = "# header\n\n" + once + "\n  # trailer\n";
  auto parsed_noisy = ParseFstab(noisy);
  ASSERT_TRUE(parsed_noisy.ok());
  EXPECT_EQ(SerializeFstab(parsed_noisy.value()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FstabFixpoint, ::testing::Range<uint64_t>(1, 25));

class SudoersFixpoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SudoersFixpoint, SerializeParseSerializeIsStable) {
  uint64_t seed = GetParam() * 7907;
  SudoersPolicy policy;
  policy.timestamp_timeout_sec = (Next(&seed) % 20 + 1) * 60;
  size_t n = Next(&seed) % 6 + 1;
  for (size_t i = 0; i < n; ++i) {
    SudoRule rule;
    rule.user = (Next(&seed) % 4 == 0) ? "ALL" : Name(&seed);
    rule.runas = {(Next(&seed) % 3 == 0) ? "ALL" : Name(&seed)};
    switch (Next(&seed) % 3) {
      case 0: rule.nopasswd = true; break;
      case 1: rule.targetpw = true; break;
      default: break;
    }
    rule.commands = {(Next(&seed) % 2) ? "ALL" : "/usr/bin/cmd" + std::to_string(i) + " *"};
    policy.rules.push_back(std::move(rule));
  }
  if (Next(&seed) % 2) {
    policy.password_groups.push_back("staff");
  }
  if (Next(&seed) % 2) {
    policy.file_delegations.push_back({"/usr/lib/tool", "/etc/secret*", kMayRead});
  }
  if (Next(&seed) % 2) {
    policy.reauth_read_globs.push_back("/etc/shadows/*");
  }
  std::string once = SerializeSudoers(policy);
  auto parsed = ParseSudoers(once);
  ASSERT_TRUE(parsed.ok()) << once;
  EXPECT_EQ(SerializeSudoers(parsed.value()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SudoersFixpoint, ::testing::Range<uint64_t>(1, 25));

class BindConfFixpoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BindConfFixpoint, SerializeParseSerializeIsStable) {
  uint64_t seed = GetParam() * 65537;
  std::vector<BindConfEntry> entries;
  size_t n = Next(&seed) % 6 + 1;
  for (size_t i = 0; i < n; ++i) {
    BindConfEntry e;
    e.port = static_cast<uint16_t>(25 + i * 37 % 990);
    e.binary = "/usr/sbin/svc" + std::to_string(i);
    e.uid = static_cast<Uid>(Next(&seed) % 2000);
    entries.push_back(std::move(e));
  }
  std::string once = SerializeBindConf(entries);
  auto parsed = ParseBindConf(once);
  ASSERT_TRUE(parsed.ok()) << once;
  EXPECT_EQ(SerializeBindConf(parsed.value()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BindConfFixpoint, ::testing::Range<uint64_t>(1, 17));

// Randomized mount/umount sequences: whatever an adversarial sequence of
// unprivileged calls does, the mount table only ever contains whitelisted
// (or root-made) mounts, and /proc/mounts stays consistent with it.
class MountSequenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MountSequenceProperty, TableOnlyEverHoldsWhitelistedMounts) {
  uint64_t seed = GetParam() * 48271;
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& alice = sys.Login("alice");
  Task& bob = sys.Login("bob");

  const char* devices[] = {"/dev/cdrom", "/dev/sdb1", "/dev/sda2", "/dev/nosuch"};
  const char* points[] = {"/media/cdrom", "/media/usb", "/mnt/backup", "/etc", "/tmp"};
  const char* types[] = {"iso9660", "vfat", "ext4"};

  for (int step = 0; step < 40; ++step) {
    Task& actor = (Next(&seed) % 2) ? alice : bob;
    if (Next(&seed) % 3 == 0) {
      (void)k.Umount(actor, points[Next(&seed) % 5]);
    } else {
      (void)k.Mount(actor, devices[Next(&seed) % 4], points[Next(&seed) % 5],
                    types[Next(&seed) % 3], {"ro"});
    }
    // INVARIANT: every live mount is one of the two whitelisted pairs.
    for (const auto& m : k.vfs().mounts()) {
      bool allowed = (m->source == "/dev/cdrom" && m->mountpoint == "/media/cdrom") ||
                     (m->source == "/dev/sdb1" && m->mountpoint == "/media/usb");
      EXPECT_TRUE(allowed) << "illegal mount: " << m->source << " on " << m->mountpoint;
    }
    // INVARIANT: /proc/mounts mirrors the table exactly.
    Task& root = sys.Login("root");
    auto proc = k.ReadWholeFile(root, "/proc/mounts");
    size_t lines = 0;
    for (const std::string& line : Split(proc.value(), '\n')) {
      if (!Trim(line).empty()) {
        ++lines;
      }
    }
    EXPECT_EQ(lines, k.vfs().mounts().size());
    k.ReapTask(root.pid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MountSequenceProperty, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace protego
