// Property-based tests: parameterized sweeps over randomized or enumerated
// inputs asserting the system's core invariants.

#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"
#include "src/protego/default_rules.h"
#include "src/sim/system.h"

namespace protego {
namespace {

// Deterministic splitmix64 for input generation.
uint64_t Next(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- Invariant: routing-conflict detection is symmetric and reflexive ------------

class RouteConflictProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RouteConflictProperty, SymmetricAndReflexive) {
  uint64_t seed = GetParam();
  RouteEntry a{static_cast<Ipv4>(Next(&seed)), static_cast<int>(Next(&seed) % 25 + 8), 0,
               "a", 0};
  RouteEntry b{static_cast<Ipv4>(Next(&seed)), static_cast<int>(Next(&seed) % 25 + 8), 0,
               "b", 0};
  RoutingTable with_a;
  ASSERT_TRUE(with_a.Add(a).ok());
  RoutingTable with_b;
  ASSERT_TRUE(with_b.Add(b).ok());
  // Symmetry: a conflicts with b iff b conflicts with a.
  EXPECT_EQ(with_a.Conflicts(b), with_b.Conflicts(a)) << a.ToString() << " vs "
                                                      << b.ToString();
  // Reflexivity: every route conflicts with itself.
  EXPECT_TRUE(with_a.Conflicts(a));
  // Consistency with lookup: if b's network address routes via a's entry,
  // they overlap, so they must conflict.
  if (RoutingTable::PrefixContains(a.dst, a.prefix_len, b.dst)) {
    EXPECT_TRUE(with_a.Conflicts(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteConflictProperty, ::testing::Range<uint64_t>(1, 65));

// --- Invariant: the default raw ruleset never touches non-raw traffic -------------

class RawRulesetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RawRulesetProperty, NonRawTrafficUnaffectedRawTcpAlwaysDropped) {
  uint64_t seed = GetParam() * 7919;
  Netfilter nf;
  InstallDefaultRawSocketRules(&nf);
  for (int i = 0; i < 64; ++i) {
    Packet p;
    int protos[] = {kProtoIcmp, kProtoTcp, kProtoUdp, kProtoArp};
    p.l4_proto = protos[Next(&seed) % 4];
    p.icmp_type = static_cast<int>(Next(&seed) % 16);
    p.src_port = static_cast<uint16_t>(Next(&seed) % 65536);
    p.dst_port = static_cast<uint16_t>(Next(&seed) % 65536);
    p.sender_uid = static_cast<Uid>(Next(&seed) % 3 + 1000);

    p.from_raw_socket = false;
    EXPECT_EQ(nf.Evaluate(NfChain::kOutput, p), NfVerdict::kAccept)
        << "non-raw packet dropped: " << p.ToString();

    p.from_raw_socket = true;
    NfVerdict raw_verdict = nf.Evaluate(NfChain::kOutput, p);
    if (p.l4_proto == kProtoTcp) {
      EXPECT_EQ(raw_verdict, NfVerdict::kDrop) << "raw TCP accepted: " << p.ToString();
    }
    if (p.l4_proto == kProtoIcmp &&
        (p.icmp_type == kIcmpEchoRequest || p.icmp_type == kIcmpEchoReply)) {
      EXPECT_EQ(raw_verdict, NfVerdict::kAccept) << "raw echo dropped: " << p.ToString();
    }
    if (p.l4_proto == kProtoArp) {
      EXPECT_EQ(raw_verdict, NfVerdict::kAccept);
    }
    if (p.l4_proto == kProtoUdp) {
      EXPECT_EQ(raw_verdict, p.dst_port >= 33434 ? NfVerdict::kAccept : NfVerdict::kDrop);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RawRulesetProperty, ::testing::Range<uint64_t>(1, 17));

// --- Invariant: DAC is monotone in the permission bits ----------------------------

class DacMonotonicityProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DacMonotonicityProperty, AddingBitsNeverRevokesAccess) {
  uint32_t perms = GetParam();
  Inode narrow;
  narrow.mode = kIfReg | perms;
  narrow.uid = 100;
  narrow.gid = 50;
  auto in_group = [](Gid g) { return g == 50; };
  for (uint32_t extra_bit = 1; extra_bit <= 0400; extra_bit <<= 1) {
    Inode wide = narrow;
    wide.mode |= extra_bit;
    for (Uid uid : {100u, 200u}) {
      for (int may : {kMayRead, kMayWrite, kMayExec, kMayRead | kMayWrite}) {
        if (DacPermits(narrow, uid, in_group, may)) {
          EXPECT_TRUE(DacPermits(wide, uid, in_group, may))
              << "perms " << std::oct << perms << " + bit " << extra_bit;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPermCombos, DacMonotonicityProperty,
                         ::testing::Range<uint32_t>(0, 0777, 37));

// --- Invariant: deferred setuid never leaks credentials before exec ----------------

class DeferredSetuidProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeferredSetuidProperty, NoObservableCredChangeBetweenSetuidAndExec) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  // A fresh restricted rule per target index, so the transition defers.
  int index = GetParam();
  Task& root = sys.Login("root");
  Uid target = static_cast<Uid>(index % 2 == 0 ? 1000 : 1002);
  std::string target_name = target == 1000 ? "alice" : "charlie";
  (void)k.WriteWholeFile(root, "/etc/sudoers.d/prop",
                         "bob ALL=(" + target_name + ") NOPASSWD: /usr/bin/id\n");

  Task& bob = sys.Login("bob");
  Cred before = bob.cred;
  ASSERT_TRUE(k.Setuid(bob, target).ok());
  // INVARIANT: every observable credential is unchanged after the
  // "successful" setuid.
  EXPECT_EQ(bob.cred.ruid, before.ruid);
  EXPECT_EQ(bob.cred.euid, before.euid);
  EXPECT_EQ(bob.cred.suid, before.suid);
  EXPECT_EQ(bob.cred.fsuid, before.fsuid);
  EXPECT_EQ(bob.cred.effective.bits(), before.effective.bits());
  // A file owned by the target is still NOT accessible pre-exec.
  (void)k.WriteWholeFile(root, "/home/secret", "x", false, 0600);
  (void)k.Chown(root, "/home/secret", target, target);
  EXPECT_EQ(k.ReadWholeFile(bob, "/home/secret").code(), Errno::kEACCES);
  // The transition lands exactly at exec.
  auto code = k.Spawn(bob, "/usr/bin/id", {"/usr/bin/id"}, {});
  ASSERT_TRUE(code.ok());
  EXPECT_NE(bob.stdout_buf.find(StrFormat("euid=%u", target)), std::string::npos);
  // And the parent (post-fork semantics) is still bob.
  EXPECT_EQ(bob.cred.euid, 1001u);
}

INSTANTIATE_TEST_SUITE_P(Targets, DeferredSetuidProperty, ::testing::Range(0, 6));

// --- Invariant: glob matching basics hold over random strings ----------------------

class GlobProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobProperty, IdentityPrefixAndStarLaws) {
  uint64_t seed = GetParam() * 104729;
  for (int i = 0; i < 32; ++i) {
    std::string s;
    size_t len = Next(&seed) % 12;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + Next(&seed) % 4));
    }
    // Identity: every literal matches itself.
    EXPECT_TRUE(GlobMatch(s, s));
    // "*" matches everything.
    EXPECT_TRUE(GlobMatch("*", s));
    // prefix + "*" matches any extension of the prefix.
    if (!s.empty()) {
      std::string prefix = s.substr(0, s.size() / 2);
      EXPECT_TRUE(GlobMatch(prefix + "*", s));
      EXPECT_TRUE(GlobMatch("*" + s.substr(s.size() / 2), s));
    }
    // A '?' for each character matches.
    EXPECT_TRUE(GlobMatch(std::string(s.size(), '?'), s));
    EXPECT_FALSE(GlobMatch(std::string(s.size() + 1, '?'), s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobProperty, ::testing::Range<uint64_t>(1, 17));

// --- Invariant: port allocations exclude everyone else, always ---------------------

class BindAllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(BindAllocationProperty, OnlyTheAllocatedInstanceEverBinds) {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  uint16_t port = GetParam() == 0 ? 25 : 80;
  const char* owner_bin = GetParam() == 0 ? "/usr/sbin/eximd" : "/usr/sbin/httpd";
  Uid owner_uid = GetParam() == 0 ? 101u : 33u;

  struct Attempt {
    const char* user;
    const char* binary;
  };
  const Attempt attempts[] = {
      {"alice", "/usr/sbin/eximd"}, {"alice", "/usr/sbin/httpd"}, {"alice", "/bin/sh"},
      {"root", "/usr/sbin/eximd"},  {"root", "/usr/sbin/httpd"},  {"root", "/bin/sh"},
      {"exim", "/usr/sbin/eximd"},  {"www-data", "/usr/sbin/httpd"},
  };
  for (const Attempt& attempt : attempts) {
    Task& task = sys.Login(attempt.user);
    task.exe_path = attempt.binary;
    auto fd = k.SocketCall(task, kAfInet, kSockStream, 0);
    ASSERT_TRUE(fd.ok());
    bool should_succeed =
        task.cred.euid == owner_uid && std::string(attempt.binary) == owner_bin;
    auto result = k.BindCall(task, fd.value(), port);
    EXPECT_EQ(result.ok(), should_succeed)
        << attempt.user << " via " << attempt.binary << " on port " << port;
    (void)k.Close(task, fd.value());
    sys.kernel().ReapTask(task.pid);
  }
}

INSTANTIATE_TEST_SUITE_P(Ports, BindAllocationProperty, ::testing::Range(0, 2));

}  // namespace
}  // namespace protego
