// Tests for the study datasets and harness arithmetic (Tables 1-3, 8 and
// the LoC accounting).

#include <gtest/gtest.h>

#include "src/study/loc_accounting.h"
#include "src/study/popularity.h"
#include "src/study/remaining.h"

namespace protego {
namespace {

TEST(Popularity, TableMatchesPaper) {
  const auto& table = PopularityTable();
  ASSERT_EQ(table.size(), 20u);
  EXPECT_EQ(table[0].package, "mount");
  EXPECT_DOUBLE_EQ(table[0].ubuntu_pct, 100.00);
  // Weighted averages reproduce the paper's Wt.Avg column (+/- rounding).
  EXPECT_NEAR(WeightedAverage(table[0]), 99.99, 0.01);   // mount
  EXPECT_NEAR(WeightedAverage(table[6]), 98.21, 0.01);   // sudo
  EXPECT_NEAR(WeightedAverage(table[10]), 94.74, 0.05);  // iputils-arping
  EXPECT_NEAR(WeightedAverage(table[11]), 51.96, 0.02);  // libc-bin
  EXPECT_NEAR(WeightedAverage(table[18]), 1.50, 0.02);   // tcptraceroute
}

TEST(Popularity, CoverageReproduces895Percent) {
  EXPECT_NEAR(StudyCoveragePercent(), 89.5, 0.15);
}

TEST(Popularity, SyntheticSurveyConvergesToTruth) {
  SyntheticSurveyResult synth = RunSyntheticSurvey(20000, 2000, 42);
  EXPECT_EQ(synth.systems_sampled, 22000u);
  const auto& truth = PopularityTable();
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(synth.rows[i].ubuntu_pct, truth[i].ubuntu_pct, 1.5)
        << truth[i].package;
    EXPECT_NEAR(synth.rows[i].debian_pct, truth[i].debian_pct, 3.5) << truth[i].package;
  }
  // Deterministic for a fixed seed.
  SyntheticSurveyResult again = RunSyntheticSurvey(20000, 2000, 42);
  EXPECT_EQ(again.rows[0].ubuntu_pct, synth.rows[0].ubuntu_pct);
}

TEST(Remaining, TotalsMatchPaper) {
  EXPECT_EQ(RemainingTotal(), 91);
  EXPECT_EQ(RemainingAddressed(), 77);
  EXPECT_EQ(RemainingBinaries().size(), 7u);
}

TEST(LocAccounting, PaperLedgerSumsToGrandTotal) {
  int total = 0;
  for (const LocRow& row : LocLedger()) {
    total += row.paper_lines;
  }
  // Table 2 reports a grand total of 2,598; the row values as printed sum
  // to 2,509 (the dmcrypt-get-device row's line count is partially
  // illegible in the published table). We pin the row sum.
  EXPECT_EQ(total, 2509);
}

#ifndef PROTEGO_SOURCE_DIR
#define PROTEGO_SOURCE_DIR "."
#endif

TEST(LocAccounting, CountLinesSkipsCommentsAndBlanks) {
  // Count a known file from this repository.
  int lines = CountLines(PROTEGO_SOURCE_DIR, "src/base/clock.h");
  if (lines == 0) {
    GTEST_SKIP() << "source tree not reachable from test cwd";
  }
  // clock.h is mostly comments; the code body is small but nonzero.
  EXPECT_GT(lines, 5);
  EXPECT_LT(lines, 40);
}

TEST(LocAccounting, PaperSummaryConstants) {
  TcbSummary s = PaperSummary();
  EXPECT_EQ(s.paper_deprivileged, 12717);
  EXPECT_EQ(s.paper_exploits, 40);
  EXPECT_EQ(s.paper_syscalls_changed, 8);
  EXPECT_DOUBLE_EQ(s.paper_coverage_pct, 89.5);
}

}  // namespace
}  // namespace protego
