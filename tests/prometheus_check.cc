// CLI wrapper around the Prometheus exposition-format linter: reads an
// exposition from stdin, prints the first problem (if any), exits nonzero
// on malformed input. CI pipes the quickstart's /proc/protego/metrics dump
// through this.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "tests/prometheus_lint.h"

int main() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  std::string text = buf.str();
  if (text.empty()) {
    std::fprintf(stderr, "prometheus_check: empty input\n");
    return 1;
  }
  if (auto err = protego::prom::LintPrometheusText(text)) {
    std::fprintf(stderr, "prometheus_check: %s\n", err->c_str());
    return 1;
  }
  std::printf("prometheus_check: OK (%zu bytes)\n", text.size());
  return 0;
}
