// Tests for the compiled policy engine and the per-task LSM decision cache:
// CompiledGlob classification parity with the generic matcher, compiled-vs-scan
// verdict parity through a full SimSystem, and generation-counter invalidation
// on policy swaps and credential changes.

#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/config/compiled_glob.h"
#include "src/protego/proc_iface.h"
#include "src/sim/system.h"

namespace protego {
namespace {

// --- CompiledGlob -----------------------------------------------------------

TEST(CompiledGlob, AgreesWithGlobMatchOnEveryShape) {
  const char* patterns[] = {
      "/dev/cdrom",         // literal
      "/etc/shadows/*",     // prefix
      "*.iso",              // suffix
      "/home/*/mnt",        // prefix+suffix
      "/h?me/*",            // '?' forces the general matcher
      "/a/*/b/*",           // two stars likewise
      "*",                  // degenerate prefix (matches everything)
      "",                   // empty literal
  };
  const char* texts[] = {
      "/dev/cdrom",  "/dev/cdrom2",  "/etc/shadows/alice", "/etc/shadows/",
      "/etc/shadow", "disk.iso",     ".iso",               "iso",
      "/home/a/mnt", "/home/a/b/mnt", "/home/mnt",         "/hame/x",
      "/a/x/b/y",    "/a/b",          "",                  "x",
  };
  for (const char* p : patterns) {
    CompiledGlob compiled((std::string(p)));
    for (const char* t : texts) {
      EXPECT_EQ(compiled.Matches(t), GlobMatch(p, t))
          << "pattern=" << p << " text=" << t;
    }
  }
}

TEST(CompiledGlob, PrefixSuffixRequiresDisjointHalves) {
  // "ab*ba" must not match "aba": the head and tail may not overlap.
  CompiledGlob g("ab*ba");
  EXPECT_FALSE(g.Matches("aba"));
  EXPECT_TRUE(g.Matches("abba"));
  EXPECT_TRUE(g.Matches("abxba"));
  EXPECT_EQ(g.Matches("aba"), GlobMatch("ab*ba", "aba"));
}

TEST(CompiledGlob, LiteralDetection) {
  EXPECT_TRUE(CompiledGlob("/dev/sdb1").is_literal());
  EXPECT_FALSE(CompiledGlob("/dev/sd*").is_literal());
  EXPECT_FALSE(CompiledGlob("/dev/sd?").is_literal());
}

// --- Compiled vs. scan parity ----------------------------------------------

class PolicyEngineTest : public ::testing::Test {
 protected:
  PolicyEngineTest() : sys_(SimMode::kProtego) {}

  SimSystem sys_;
};

TEST_F(PolicyEngineTest, CompiledAndScanPathsAgreeOnDefaultPolicy) {
  // Run the same mixed workload twice, once per engine, on fresh systems;
  // every verdict-bearing outcome must be identical.
  for (bool compiled : {true, false}) {
    SimSystem sys(SimMode::kProtego);
    sys.lsm()->set_compiled_engine_enabled(compiled);
    Kernel& k = sys.kernel();

    // Bind table.
    Task& exim = sys.Login("exim");
    exim.exe_path = "/usr/sbin/eximd";
    auto fd = k.SocketCall(exim, kAfInet, kSockStream, 0);
    EXPECT_TRUE(k.BindCall(exim, fd.value(), 25).ok()) << "compiled=" << compiled;
    Task& alice = sys.Login("alice");
    auto fd2 = k.SocketCall(alice, kAfInet, kSockStream, 0);
    EXPECT_EQ(k.BindCall(alice, fd2.value(), 80).code(), Errno::kEACCES);
    EXPECT_EQ(k.BindCall(alice, fd2.value(), 443).code(), Errno::kEACCES);

    // Mount whitelist, literal and glob rules.
    EXPECT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
    EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/usb", "iso9660", {"ro"}).code(),
              Errno::kEPERM);
    ASSERT_TRUE(k.Mkdir(alice, "/home/alice/mnt", 0755).ok());
    EXPECT_TRUE(k.Mount(alice, "fuse", "/home/alice/mnt", "fuse", {"rw", "user"}).ok());
    Task& bob = sys.Login("bob");
    EXPECT_EQ(k.Umount(bob, "/media/cdrom").code(), Errno::kEPERM);
    EXPECT_TRUE(k.Umount(alice, "/media/cdrom").ok());

    // File delegation + reauth gate.
    EXPECT_EQ(k.ReadWholeFile(alice, "/etc/ssh/ssh_host_key").code(), Errno::kEACCES);
    auto out = sys.RunCapture(alice, "/usr/lib/ssh-keysign", {"ssh-keysign", "x"});
    EXPECT_EQ(out.exit_code, 0);
    EXPECT_EQ(k.ReadWholeFile(alice, "/etc/shadows/alice").code(), Errno::kEACCES);
    Task& alice2 = sys.Login("alice");
    alice2.terminal->QueueInput("alicepw");
    EXPECT_TRUE(k.ReadWholeFile(alice2, "/etc/shadows/alice").ok());

    // Sudoers: alice is %admin, www-data has nothing.
    Task& alice3 = sys.Login("alice");
    alice3.terminal->QueueInput("alicepw");
    EXPECT_TRUE(k.Setuid(alice3, 0).ok());
    Task& www = sys.Login("www-data");
    EXPECT_EQ(k.Setuid(www, 1001).code(), Errno::kEPERM);
  }
}

// --- Decision cache ---------------------------------------------------------

TEST_F(PolicyEngineTest, RepeatedDecisionsHitTheCache) {
  Kernel& k = sys_.kernel();
  LsmStack& lsm = k.lsm();
  // Cache mechanics under test: force the cache on despite the fixture's
  // small policy tables (the adaptive bypass would skip it).
  lsm.set_cache_bypass_enabled(false);
  Task& alice = sys_.Login("alice");

  // Identical denied mounts: first miss, then hits.
  uint64_t hits = lsm.decision_cache_hits();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/usb", "iso9660", {"ro"}).code(),
              Errno::kEPERM);
  }
  EXPECT_GE(lsm.decision_cache_hits(), hits + 3);

  // The counters surface in /proc/protego/status.
  std::string status = k.ReadWholeFile(alice, "/proc/protego/status").value();
  EXPECT_NE(status.find("decision_cache_hits "), std::string::npos);
  EXPECT_NE(status.find("decision_cache_misses "), std::string::npos);
  EXPECT_NE(status.find("policy_generation "), std::string::npos);
}

TEST_F(PolicyEngineTest, PolicySwapInvalidatesCachedVerdicts) {
  Kernel& k = sys_.kernel();
  LsmStack& lsm = k.lsm();
  Task& root = sys_.Login("root");
  Task& web = sys_.Login("root");
  web.exe_path = "/usr/sbin/nginx";

  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/ports",
                               "80 /usr/sbin/nginx 0\n")
                  .ok());
  // Warm the cache with an allowed bind (bind + close, twice to ensure the
  // allow verdict is actually cached, not just inserted).
  for (int i = 0; i < 2; ++i) {
    auto fd = k.SocketCall(web, kAfInet, kSockStream, 0);
    ASSERT_TRUE(k.BindCall(web, fd.value(), 80).ok());
    ASSERT_TRUE(k.Close(web, fd.value()).ok());
  }

  // Swap the table so port 80 belongs to someone else. The generation bump
  // must invalidate the cached allow ON THE VERY NEXT CALL.
  uint64_t generation = lsm.policy_generation();
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/ports",
                               "80 /usr/sbin/httpd 33\n")
                  .ok());
  EXPECT_GT(lsm.policy_generation(), generation);
  auto fd = k.SocketCall(web, kAfInet, kSockStream, 0);
  EXPECT_EQ(k.BindCall(web, fd.value(), 80).code(), Errno::kEACCES);

  // And back: the deny verdict does not stick either.
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/ports",
                               "80 /usr/sbin/nginx 0\n")
                  .ok());
  auto fd2 = k.SocketCall(web, kAfInet, kSockStream, 0);
  EXPECT_TRUE(k.BindCall(web, fd2.value(), 80).ok());
}

TEST_F(PolicyEngineTest, MountRuleSwapFlipsCachedAllowToDeny) {
  Kernel& k = sys_.kernel();
  Task& root = sys_.Login("root");
  Task& alice = sys_.Login("alice");

  // Cache an allowed mount decision (mount + umount so it can repeat).
  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  ASSERT_TRUE(k.Umount(alice, "/media/cdrom").ok());
  ASSERT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
  ASSERT_TRUE(k.Umount(alice, "/media/cdrom").ok());

  // Drop the cdrom rule; the cached allow must not survive the swap.
  ASSERT_TRUE(k.WriteWholeFile(root, "/proc/protego/mounts",
                               "/dev/sdb1 /media/usb vfat rw,users 0 0\n")
                  .ok());
  EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).code(),
            Errno::kEPERM);
}

TEST_F(PolicyEngineTest, CredentialChangesDropTheTaskCache) {
  Kernel& k = sys_.kernel();
  LsmStack& lsm = k.lsm();

  // A cached inode-permission verdict keyed on alice's creds must not be
  // consulted once the task's credentials change: setuid and execve both
  // clear the per-task cache, and a fresh Spawn starts cold.
  Task& alice = sys_.Login("alice");
  alice.terminal->QueueInput("alicepw");
  ASSERT_TRUE(k.ReadWholeFile(alice, "/etc/shadows/alice").ok());

  uint64_t misses = lsm.decision_cache_misses();
  ASSERT_TRUE(k.Setuid(alice, 0).ok());  // %admin, freshly authenticated
  ASSERT_EQ(alice.cred.euid, 0u);
  // Same path, new creds: the verdict is recomputed, never served from a
  // stale hit carrying alice's old signature. The reauth gate now challenges
  // for ruid 0 — root's password is not on the terminal, so the read that
  // succeeded a moment ago is DENIED under the new credentials.
  EXPECT_EQ(k.ReadWholeFile(alice, "/etc/shadows/alice").code(), Errno::kEACCES);
  EXPECT_GE(lsm.decision_cache_misses(), misses);

  // Spawned children inherit credentials but not cached verdicts.
  auto out = sys_.RunCapture(alice, "/usr/lib/ssh-keysign", {"ssh-keysign", "x"});
  EXPECT_EQ(out.exit_code, 0);
}

TEST_F(PolicyEngineTest, CacheDisabledStillProducesSameVerdicts) {
  Kernel& k = sys_.kernel();
  k.lsm().set_decision_cache_enabled(false);
  Task& alice = sys_.Login("alice");
  uint64_t hits = k.lsm().decision_cache_hits();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(k.Mount(alice, "/dev/cdrom", "/media/usb", "iso9660", {"ro"}).code(),
              Errno::kEPERM);
    EXPECT_TRUE(k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"}).ok());
    EXPECT_TRUE(k.Umount(alice, "/media/cdrom").ok());
  }
  EXPECT_EQ(k.lsm().decision_cache_hits(), hits);  // nothing cached
}

}  // namespace
}  // namespace protego
