// Delegation walkthrough (§4.3): the administrator writes a sudoers rule,
// the monitoring daemon pushes it into the kernel, and from then on the
// kernel — not a setuid sudo binary — decides who may act as whom.
//
//   $ ./build/examples/delegation

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

namespace {

void Show(const char* title, const SimSystem::RunOutput& out) {
  std::printf("\n$ %s\n", title);
  std::printf("%s", out.out.c_str());
  if (!out.err.empty()) {
    std::printf("%s", out.err.c_str());
  }
  std::printf("(exit %d)\n", out.exit_code);
}

}  // namespace

int main() {
  SimSystem sys(SimMode::kProtego);

  // The administrator delegates: bob may run `wc`-like lpr on alice's
  // files... actually, let's write a brand-new rule and watch it take
  // effect without touching any binary.
  Task& root = sys.Login("root");
  (void)sys.kernel().WriteWholeFile(
      root, "/etc/sudoers.d/example",
      "# bob may restart the simulated web server as www-data\n"
      "bob ALL=(www-data) NOPASSWD: /usr/bin/id\n");
  std::printf("Administrator wrote /etc/sudoers.d/example; daemon synced %llu times.\n",
              static_cast<unsigned long long>(sys.daemon()->sync_count()));

  // bob exercises the new rule: no password (NOPASSWD), no setuid binary.
  Task& bob = sys.Login("bob");
  Show("sudo -u www-data id        # bob, via the new rule",
       sys.RunCapture(bob, "/usr/bin/sudo", {"sudo", "--user=www-data", "/usr/bin/id"}));

  // The same bob cannot become alice arbitrarily...
  Show("sudo -u alice id           # bob, no rule covers this",
       sys.RunCapture(bob, "/usr/bin/sudo", {"sudo", "--user=alice", "/usr/bin/id"}));

  // ...but su with alice's password still works (the TARGETPW rule).
  Task& bob2 = sys.Login("bob");
  bob2.terminal->QueueInput("alicepw");
  Show("su alice                   # bob types alice's password",
       sys.RunCapture(bob2, "/bin/su", {"su", "alice"}));

  // Authentication recency: charlie has a NOPASSWD rule for id only.
  Task& charlie = sys.Login("charlie");
  Show("sudo id                    # charlie's NOPASSWD rule",
       sys.RunCapture(charlie, "/usr/bin/sudo", {"sudo", "/usr/bin/id"}));
  Show("sudo cat /etc/shadow       # charlie, not delegated",
       sys.RunCapture(charlie, "/usr/bin/sudo", {"sudo", "/bin/cat", "/etc/shadow"}));

  std::printf("\nKernel delegation decisions: setuid_allowed=%llu deferred=%llu denied=%llu\n",
              static_cast<unsigned long long>(sys.lsm()->stats().setuid_allowed),
              static_cast<unsigned long long>(sys.lsm()->stats().setuid_deferred),
              static_cast<unsigned long long>(sys.lsm()->stats().setuid_denied));
  return 0;
}
