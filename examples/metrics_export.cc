// Boots a Protego system, runs a small mixed workload, and dumps
// /proc/protego/metrics — and nothing else — to stdout.
//
// CI pipes this through tests/prometheus_check to validate that the
// exposition stays well-formed Prometheus text format:
//
//   $ ./build/examples/metrics_export | ./build/tests/prometheus_check

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

int main() {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();

  // Exercise every instrumented subsystem: syscalls, LSM hooks (allowed and
  // denied), the decision cache, netfilter, and a cred transition.
  Task& alice = sys.Login("alice");
  for (int i = 0; i < 100; ++i) {
    kernel.GetPid(alice);
  }
  (void)kernel.Open(alice, "/etc/shadow", kORdOnly);           // EACCES
  (void)kernel.Mount(alice, "/dev/sda1", "/mnt", "ext4", {});  // EPERM
  (void)kernel.Mount(alice, "/dev/sda1", "/mnt", "ext4", {});  // cache hit
  (void)sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});

  Task& root = sys.Login("root");
  auto metrics = kernel.ReadWholeFile(root, "/proc/protego/metrics");
  if (!metrics.ok()) {
    std::fprintf(stderr, "metrics_export: %s\n", metrics.error().ToString().c_str());
    return 1;
  }
  std::fputs(metrics.value().c_str(), stdout);
  return 0;
}
