// Quickstart: boot a Protego system, act as an unprivileged user, and watch
// the kernel enforce the policies that used to live in setuid binaries.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

int main() {
  std::printf("Booting a Protego system (kernel + LSM + trusted services + userland)...\n");
  SimSystem sys(SimMode::kProtego);

  // A login session for an ordinary user.
  Task& alice = sys.Login("alice");
  std::printf("Logged in: alice (uid=%u). No setuid binaries anywhere:\n", alice.cred.ruid);
  for (const char* bin : {"/bin/mount", "/bin/ping", "/usr/bin/sudo", "/usr/bin/passwd"}) {
    auto st = sys.kernel().Stat(alice, bin);
    std::printf("  %-16s mode %04o (setuid bit: %s)\n", bin, st.value().mode & kPermMask,
                (st.value().mode & kSetUidBit) ? "SET" : "clear");
  }

  // 1. Mount the CD-ROM: the fstab "user" entry is enforced by the kernel.
  auto mount = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  std::printf("\n$ mount /dev/cdrom\n%s", mount.out.c_str());

  // 2. Ping: raw sockets without privilege, filtered by netfilter.
  auto ping = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});
  std::printf("\n$ ping 10.0.0.2\n%s", ping.out.c_str());

  // 3. But the kernel still refuses what policy does not grant.
  auto bad = sys.kernel().Mount(alice, "/dev/cdrom", "/etc", "iso9660", {"ro"});
  std::printf("\n$ mount /dev/cdrom /etc   (direct syscall)\n  -> %s\n",
              bad.ok() ? "allowed?!" : bad.error().ToString().c_str());

  // 4. The kernel's view of its own decisions.
  Task& root = sys.Login("root");
  auto status = sys.kernel().ReadWholeFile(root, "/proc/protego/status");
  std::printf("\n/proc/protego/status:\n%s", status.value_or("<unreadable>").c_str());

  // 5. Everything above went through the unified syscall entry path.
  auto stats = sys.kernel().ReadWholeFile(root, "/proc/protego/syscall_stats");
  std::printf("\n/proc/protego/syscall_stats:\n%s", stats.value_or("<unreadable>").c_str());

  // 6. WHY was that mount refused? Every syscall opens a decision span;
  // /proc/protego/trace renders the full derivation tree — the strace-shaped
  // record plus each LSM module's verdict beneath it. Filter to mount(2).
  (void)sys.kernel().WriteWholeFile(root, "/proc/protego/trace", "clear");
  auto denied = sys.kernel().Mount(alice, "/dev/sda1", "/home", "ext4", {});
  (void)denied;
  (void)sys.kernel().WriteWholeFile(root, "/proc/protego/trace", "?syscall=mount");
  auto trace = sys.kernel().ReadWholeFile(root, "/proc/protego/trace");
  std::printf("\n/proc/protego/trace (filtered: ?syscall=mount):\n%s",
              trace.value_or("<unreadable>").c_str());
  (void)sys.kernel().WriteWholeFile(root, "/proc/protego/trace", "?");

  // 7. And the same counters as Prometheus metrics (excerpt).
  auto metrics = sys.kernel().ReadWholeFile(root, "/proc/protego/metrics");
  std::string excerpt;
  size_t lines = 0;
  for (size_t pos = 0; pos < metrics.value_or("").size() && lines < 12;) {
    size_t nl = metrics.value().find('\n', pos);
    std::string line = metrics.value().substr(pos, nl - pos);
    pos = nl + 1;
    if (line.rfind("protego_policy_decisions_total", 0) == 0 ||
        line.rfind("protego_syscall_latency_ticks_bucket{syscall=\"mount\"", 0) == 0) {
      excerpt += line + "\n";
      ++lines;
    }
  }
  std::printf("\n/proc/protego/metrics (excerpt):\n%s", excerpt.c_str());
  return 0;
}
