// §4.1.1's punchline: "Protego allows any unprivileged user to create her
// own enhanced ping utility, as long as it conforms to system security
// policy." This example installs exactly that — a brand-new, completely
// untrusted binary that uses raw sockets — and shows that the netfilter
// policy (not binary blessing) decides what it can emit.
//
//   $ ./build/examples/custom_ping

#include <cstdio>

#include "src/base/strings.h"
#include "src/sim/system.h"

using namespace protego;

int main() {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();

  // alice writes her own ping: sends THREE probes per call and prints
  // round-trip style stats. Nobody audited or blessed this code.
  (void)kernel.InstallBinary(
      "/home/alice/myping", 0755, 1000, 1000, [](ProcessContext& ctx) -> int {
        auto dst = ParseIpv4(ctx.argv.size() > 1 ? ctx.argv[1] : "");
        if (!dst) {
          ctx.Err("myping: usage: myping <ip>\n");
          return 2;
        }
        auto fd = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockRaw, kProtoIcmp);
        if (!fd.ok()) {
          ctx.Err("myping: " + fd.error().ToString() + "\n");
          return 2;
        }
        int got = 0;
        for (int i = 0; i < 3; ++i) {
          Packet p;
          p.l4_proto = kProtoIcmp;
          p.icmp_type = kIcmpEchoRequest;
          p.dst_ip = *dst;
          (void)ctx.kernel.SendCall(ctx.task, fd.value(), p);
          auto r = ctx.kernel.RecvCall(ctx.task, fd.value());
          if (r.ok() && r.value().has_value()) {
            ++got;
          }
        }
        ctx.Out(StrFormat("myping: %d/3 replies from %s\n", got, ctx.argv[1].c_str()));
        return got > 0 ? 0 : 1;
      });

  Task& alice = sys.Login("alice");
  auto ok = sys.RunCapture(alice, "/home/alice/myping", {"myping", "10.0.0.2"});
  std::printf("$ ~/myping 10.0.0.2\n%s(exit %d)\n\n", ok.out.c_str(), ok.exit_code);

  // The same socket CANNOT be used to spoof TCP traffic: the kernel's
  // netfilter rules drop it before it reaches anyone.
  (void)kernel.InstallBinary(
      "/home/alice/spoofer", 0755, 1000, 1000, [](ProcessContext& ctx) -> int {
        auto fd = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockRaw, kProtoTcp);
        if (!fd.ok()) {
          ctx.Err("spoofer: " + fd.error().ToString() + "\n");
          return 2;
        }
        Packet forged;
        forged.l4_proto = kProtoTcp;
        forged.src_port = 25;  // pretend to be the mail server
        forged.dst_ip = kLocalhostIp;
        forged.dst_port = 12345;
        forged.payload = "RST";
        (void)ctx.kernel.SendCall(ctx.task, fd.value(), forged);
        ctx.Out("spoofer: forged packet submitted\n");
        return 0;
      });

  uint64_t dropped_before = kernel.net().packets_dropped();
  auto spoof = sys.RunCapture(alice, "/home/alice/spoofer", {"spoofer"});
  std::printf("$ ~/spoofer\n%s", spoof.out.c_str());
  std::printf("netfilter verdict: %llu packet(s) dropped — the forgery never left the "
              "machine.\n",
              static_cast<unsigned long long>(kernel.net().packets_dropped() - dropped_before));

  // For contrast: on stock Linux the same user cannot even open the socket.
  SimSystem stock(SimMode::kLinux);
  Task& stock_alice = stock.Login("alice");
  auto refused = stock.kernel().SocketCall(stock_alice, kAfInet, kSockRaw, kProtoIcmp);
  std::printf("\nOn stock Linux, alice's raw socket: %s\n",
              refused.ok() ? "allowed?!" : refused.error().ToString().c_str());
  std::printf("...which is why stock ping must be setuid root in the first place.\n");
  return 0;
}
