// Namespaces vs Protego (§4.6/§6): why unprivileged namespaces retire the
// chromium-sandbox setuid bit, and why they are the WRONG tool for the
// shared-resource policies Protego handles.
//
//   $ ./build/examples/sandboxing

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

int main() {
  // On the 2012-era baseline (Linux 3.6), sandboxing needs setuid root.
  {
    SimSystem old_sys(SimMode::kLinux);
    Task& alice = old_sys.Login("alice");
    auto direct =
        old_sys.kernel().Unshare(alice, Kernel::kCloneNewUser | Kernel::kCloneNewNet);
    std::printf("Linux 3.6: alice calls unshare() herself -> %s\n",
                direct.ok() ? "ok?!" : direct.error().ToString().c_str());
    auto helper =
        old_sys.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
    std::printf("Linux 3.6: the SETUID chromium-sandbox helper -> exit %d\n%s\n",
                helper.exit_code, helper.out.c_str());
  }

  // With 3.8+ semantics the same helper needs no privilege at all.
  SimSystem sys(SimMode::kProtego);
  Task& alice = sys.Login("alice");
  auto out = sys.RunCapture(alice, "/usr/lib/chromium-sandbox", {"chromium-sandbox"});
  std::printf("Linux 3.8+ semantics, NO setuid bit -> exit %d\n%s\n", out.exit_code,
              out.out.c_str());

  // The paper's §6 argument, live: inside the sandbox alice "has" raw
  // sockets and low ports — over a fake world. The SHARED system is exactly
  // as far away as before...
  Task& sandboxed = sys.Login("alice");
  (void)sys.kernel().Unshare(sandboxed, Kernel::kCloneNewUser | Kernel::kCloneNewNet);
  auto shadow = sys.kernel().ReadWholeFile(sandboxed, "/etc/shadow");
  auto become_root = sys.kernel().Setuid(sandboxed, 0);
  std::printf("inside the sandbox: read /etc/shadow -> %s\n",
              shadow.ok() ? "ok?!" : shadow.error().ToString().c_str());
  std::printf("inside the sandbox: setuid(0)        -> %s\n",
              become_root.ok() ? "ok?!" : become_root.error().ToString().c_str());

  // ...while Protego's object policies keep working for the same user:
  auto mount = sys.kernel().Mount(sandboxed, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
  std::printf("inside the sandbox: whitelisted mount -> %s\n",
              mount.ok() ? "ok (Protego object policy)" : mount.error().ToString().c_str());
  std::printf("\nNamespaces isolate FAKE resources; Protego mediates SHARED ones.\n");
  return 0;
}
