// Credential-database walkthrough (§4.4): the fragmented per-user database,
// record-level access control via plain file permissions, and the
// monitoring daemon keeping the legacy shared files in sync.
//
//   $ ./build/examples/account_management

#include <cstdio>

#include "src/base/strings.h"
#include "src/sim/system.h"

using namespace protego;

int main() {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();

  std::printf("The password database is fragmented per account:\n");
  Task& root = sys.Login("root");
  auto fragment_names = kernel.ReadDir(root, "/etc/passwds");
  for (const std::string& name : fragment_names.value()) {
    auto st = kernel.Stat(root, "/etc/passwds/" + name);
    std::printf("  /etc/passwds/%-10s owner uid=%-5u mode %04o\n", name.c_str(),
                st.value().uid, st.value().mode & kPermMask);
  }

  // alice edits her own record with an ordinary, unprivileged tool.
  Task& alice = sys.Login("alice");
  auto chsh = sys.RunCapture(alice, "/usr/bin/chsh", {"chsh", "/bin/bash"});
  std::printf("\n$ chsh /bin/bash (as alice)\n%s(exit %d)\n", chsh.out.c_str(),
              chsh.exit_code);

  // ...but cannot touch bob's record: DAC on the fragment refuses.
  auto direct = kernel.WriteWholeFile(alice, "/etc/passwds/bob",
                                      "bob:x:0:0:owned:/root:/bin/sh\n");
  std::printf("\n$ echo 'bob:x:0:0:...' > /etc/passwds/bob (as alice)\n  -> %s\n",
              direct.ok() ? "allowed?!" : direct.error().ToString().c_str());

  // The monitoring daemon regenerated the LEGACY /etc/passwd for programs
  // that still read the shared file.
  auto legacy = kernel.ReadWholeFile(root, "/etc/passwd");
  std::printf("\nLegacy /etc/passwd (kept in sync by the monitoring daemon):\n");
  for (const std::string& line : Split(legacy.value_or(""), '\n')) {
    if (line.find("alice") != std::string::npos) {
      std::printf("  %s   <-- shell updated\n", line.c_str());
    }
  }

  // Password change: the kernel's reauthentication gate replaces passwd's
  // own current-password check.
  Task& bob = sys.Login("bob");
  bob.terminal->QueueInput("bobpw");       // for the kernel's reauth gate
  bob.terminal->QueueInput("s3cret!");     // the new password
  auto passwd = sys.RunCapture(bob, "/usr/bin/passwd", {"passwd"});
  std::printf("\n$ passwd (as bob)\n%s(exit %d)\n", passwd.out.c_str(), passwd.exit_code);

  // And reading someone ELSE's shadow fragment is simply impossible.
  auto peek = kernel.ReadWholeFile(alice, "/etc/shadows/bob");
  std::printf("\n$ cat /etc/shadows/bob (as alice)\n  -> %s\n",
              peek.ok() ? "allowed?!" : peek.error().ToString().c_str());
  return 0;
}
