// Quickstart for the trace-driven policy synthesizer (DESIGN.md §14):
//
//   policy_synth                    synthesize everything, print the policy
//   policy_synth /usr/bin/passwd    print one binary's argument-aware filter
//                                   and re-run the functional suite under
//                                   the synthesized-only policy
//   policy_synth --study            run the full gating study (determinism,
//                                   functional equivalence, CVE containment)
//
// Exit status is nonzero when a requested check fails, so the binary
// doubles as a CI smoke test.

#include <cstdio>
#include <string>

#include "src/study/synth_study.h"

using namespace protego;
using namespace protego::synth;

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "";
  constexpr uint64_t kSeed = 42;

  if (arg == "--study") {
    SynthStudyResult result = RunSynthStudy(kSeed);
    std::printf("%s", result.report.c_str());
    return result.ok() ? 0 : 1;
  }

  SynthesizedPolicy policy = SynthesizePolicy(kSeed, ExecMode::kDeterministic);
  if (arg.empty()) {
    std::printf("%s", policy.Render().c_str());
    return 0;
  }

  const UtilityFilter* filter = policy.FilterFor(arg);
  if (filter == nullptr) {
    std::printf("no observations for %s — traced binaries:\n", arg.c_str());
    for (const UtilityFilter& f : policy.filters) {
      std::printf("  %s\n", f.exe.c_str());
    }
    return 1;
  }
  std::printf("# synthesized filter for %s\n%s\n", arg.c_str(), filter->text.c_str());

  // Close the loop: the functional suite must still pass with ONLY the
  // synthesized policy installed.
  int mismatches = 0;
  for (const FunctionalScenario& scenario : SynthWorkload()) {
    std::string linux_transcript;
    {
      SimSystem linux_sys(SimMode::kLinux);
      linux_transcript = NormalizeTranscript(scenario.run(linux_sys));
    }
    SimSystem protego_sys(SimMode::kProtego);
    if (!InstallSynthesized(protego_sys, policy).ok()) {
      std::printf("install failed\n");
      return 1;
    }
    std::string protego_transcript = NormalizeTranscript(scenario.run(protego_sys));
    bool same = linux_transcript == protego_transcript;
    std::printf("%-28s %s\n", scenario.name.c_str(), same ? "ok" : "MISMATCH");
    if (!same) {
      ++mismatches;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
