// Fault injector: arm a fault site through /proc/protego/fault_inject, run
// the quickstart workload into the fault, and read the fault-annotated
// decision trace that explains the denial.
//
//   $ ./build/examples/fault_injector
//
// Everything here is driven through the real control files — the same
// workflow an operator would use on a live system:
//
//   1. write a directive:   site=lsm_hook error=EIO hook=sb_mount times=1
//   2. run the workload:    mount /dev/cdrom   (alice, normally allowed)
//   3. observe fail-closed: the hook reports EPERM, not the injected EIO
//   4. read the why:        /proc/protego/trace shows the fault event
//                           stamped inside the mount(2) decision span
//   5. replay:              the read side of fault_inject is itself a valid
//                           directive file — the recorded {seed, config}
//                           tuple reproduces the run exactly.

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

int main() {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  Task& alice = sys.Login("alice");

  // 1. Arm one shot of EIO inside the sb_mount LSM hook.
  const char* directive = "site=lsm_hook error=EIO hook=sb_mount times=1\n";
  std::printf("# echo '%.*s' > /proc/protego/fault_inject\n",
              static_cast<int>(std::string_view(directive).size() - 1), directive);
  auto armed = k.WriteWholeFile(root, "/proc/protego/fault_inject", directive);
  if (!armed.ok()) {
    std::fprintf(stderr, "arming failed: %s\n", armed.error().ToString().c_str());
    return 1;
  }
  (void)k.WriteWholeFile(root, "/proc/protego/trace", "clear");

  // 2. Drive the quickstart mount into the fault. The fstab "user" entry
  // normally allows this; the faulted hook must fail CLOSED (EPERM), never
  // leak the injected errno as an allow.
  auto out = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  std::printf("\n$ mount /dev/cdrom        (fault armed)\n");
  std::printf("exit=%d\n%s%s", out.exit_code, out.out.c_str(), out.err.c_str());
  std::printf("mounted: %s\n", k.vfs().FindMount("/media/cdrom") != nullptr ? "yes" : "no");

  // 3. The fault-annotated denial tree. The utility ran via execve, so its
  // whole derivation — config reads, then the mount(2) span with the
  // fault:lsm_hook event right where the verdict flipped to DENY — hangs
  // under the execve root span.
  (void)k.WriteWholeFile(root, "/proc/protego/trace", "?syscall=execve");
  auto trace = k.ReadWholeFile(root, "/proc/protego/trace");
  std::printf("\n/proc/protego/trace (filtered: ?syscall=execve):\n%s",
              trace.value_or("<unreadable>").c_str());
  (void)k.WriteWholeFile(root, "/proc/protego/trace", "?");

  // 4. The control file's read side is the replay tuple: directives plus
  // counter comments.
  auto state = k.ReadWholeFile(root, "/proc/protego/fault_inject");
  std::printf("\n/proc/protego/fault_inject:\n%s", state.value_or("<unreadable>").c_str());

  // 5. The one-shot budget is spent; the same mount now succeeds.
  auto retry = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  std::printf("\n$ mount /dev/cdrom        (budget spent)\nexit=%d\n%s", retry.exit_code,
              retry.out.c_str());
  std::printf("mounted: %s\n", k.vfs().FindMount("/media/cdrom") != nullptr ? "yes" : "no");

  bool ok = out.exit_code != 0 && k.faults().injected(FaultSite::kLsmHook) == 1 &&
            retry.exit_code == 0;
  if (!ok) {
    std::fprintf(stderr, "demo invariants violated\n");
    return 1;
  }
  return 0;
}
