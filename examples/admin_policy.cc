// Administrator's tour: editing the legacy configuration files and watching
// the monitoring daemon project them into kernel policy through the
// /proc/protego interface (§2, Figure 1) — plus direct /proc configuration
// without the daemon.
//
//   $ ./build/examples/admin_policy

#include <cstdio>

#include "src/sim/system.h"

using namespace protego;

int main() {
  SimSystem sys(SimMode::kProtego);
  Kernel& kernel = sys.kernel();
  Task& root = sys.Login("root");

  std::printf("Kernel mount whitelist (from /proc/protego/mounts):\n%s\n",
              kernel.ReadWholeFile(root, "/proc/protego/mounts").value_or("").c_str());

  // The administrator adds a user-mountable NFS share to /etc/fstab; the
  // monitoring daemon notices and updates the kernel.
  auto fstab = kernel.ReadWholeFile(root, "/etc/fstab").value_or("");
  (void)kernel.WriteWholeFile(root, "/etc/fstab",
                              fstab + "backup:/vol /mnt/nfs nfs ro,user\n");
  std::printf("After editing /etc/fstab (daemon synced automatically):\n%s\n",
              kernel.ReadWholeFile(root, "/proc/protego/mounts").value_or("").c_str());

  Task& alice = sys.Login("alice");
  (void)kernel.Mkdir(root, "/mnt/nfs", 0755);
  auto mount = sys.RunCapture(alice, "/bin/mount", {"mount", "backup:/vol", "/mnt/nfs",
                                                    "--types=nfs", "--options=ro,user"});
  std::printf("alice mounts the new share: exit=%d %s\n", mount.exit_code,
              mount.exit_code == 0 ? mount.out.c_str() : mount.err.c_str());

  // A malformed policy write is rejected atomically: parse-validate-swap.
  auto bad = kernel.WriteWholeFile(root, "/proc/protego/mounts", "garbage in\n");
  std::printf("\nWriting garbage to /proc/protego/mounts -> %s\n",
              bad.ok() ? "accepted?!" : bad.error().ToString().c_str());
  std::printf("Policy intact: %zu bytes still configured.\n",
              kernel.ReadWholeFile(root, "/proc/protego/mounts").value_or("").size());

  // Direct configuration, no daemon: allocate a second web port.
  auto ports = kernel.ReadWholeFile(root, "/proc/protego/ports").value_or("");
  (void)kernel.WriteWholeFile(root, "/proc/protego/ports",
                              ports + "443 /usr/sbin/httpd 33\n");
  std::printf("\nPort allocations after adding 443 directly via /proc:\n%s",
              kernel.ReadWholeFile(root, "/proc/protego/ports").value_or("").c_str());

  Task& www = sys.Login("www-data");
  auto https = sys.RunCapture(www, "/usr/sbin/httpd", {"httpd", "--port=443"});
  std::printf("\nwww-data starts httpd on 443 (no privilege): exit=%d %s", https.exit_code,
              https.out.c_str());
  return 0;
}
