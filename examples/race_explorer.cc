// Race explorer: find a TOCTTOU interleaving with bounded-exhaustive search,
// replay it from its recorded schedule, and show why the identical scenario
// is unexploitable under Protego.
//
//   $ ./build/examples/race_explorer
//
// The victim (/usr/bin/filereport) stats a job file, checks the invoker owns
// it, then opens it. The attacker (/usr/bin/swapjob) atomically renames a
// symlink to root-only /etc/secret over the job path. On a stock system the
// victim is setuid root, so the schedule explorer can place the rename inside
// the check/use window and the open dereferences the symlink with euid 0.

#include <cstdio>

#include "src/conc/explore.h"
#include "src/study/races.h"

using namespace protego;

int main() {
  conc::ExploreOptions opt;
  opt.mode = conc::ExploreMode::kExhaustive;
  opt.preemption_bound = 1;  // one preemption suffices: the swap in the window
  opt.max_schedules = 5000;

  // 1. Hunt for the race against the stock setuid system.
  std::printf("=== stock Linux: setuid-root filereport vs symlink swapper ===\n");
  auto stock = MakeTocttouScenario(SimMode::kLinux, TocttouVariant::kStatThenOpen);
  conc::ExploreResult found = conc::Explore(stock, opt);
  std::printf("explored %zu schedules (preemption bound %u)\n",
              found.schedules_run, opt.preemption_bound);
  if (found.violation_found) {
    std::printf("VIOLATION: %s\n", found.detail.c_str());
    std::printf("schedule:  %s\n", conc::FormatTrace(found.violating).c_str());
  }

  // 2. The schedule is the bug report: replaying it reproduces the violation
  //    deterministically, with the full context-switch sequence.
  std::printf("\n=== replaying the violating schedule ===\n");
  std::vector<conc::SchedDecision> decisions;
  auto replayed = conc::Replay(stock, found.violating, &decisions);
  std::printf("replay -> %s\n", replayed ? replayed->c_str() : "no violation?!");
  for (size_t i = 0; i < decisions.size(); ++i) {
    std::printf("  decision %zu: runnable={", i);
    for (size_t j = 0; j < decisions[i].runnable.size(); ++j) {
      std::printf("%s%d", j ? "," : "", decisions[i].runnable[j]);
    }
    std::printf("} -> pid %d%s\n", decisions[i].runnable[decisions[i].chosen_index],
                decisions[i].runnable.size() > 1 &&
                        decisions[i].runnable[decisions[i].chosen_index] != decisions[i].prev_pid &&
                        decisions[i].prev_pid != 0
                    ? "   <-- switch"
                    : "");
  }

  // 3. Same scenario, Protego mode: filereport carries no setuid bit, so the
  //    open runs with alice's own fsuid and DAC denies the swapped-in secret.
  //    The FULL bounded schedule space admits no violation.
  std::printf("\n=== Protego: same binaries, no setuid bit ===\n");
  auto protego = MakeTocttouScenario(SimMode::kProtego, TocttouVariant::kStatThenOpen);
  conc::ExploreResult none = conc::Explore(protego, opt);
  std::printf("explored %zu schedules: %s (space exhausted: %s)\n", none.schedules_run,
              none.violation_found ? "VIOLATION?!" : "no violating schedule",
              none.exhausted ? "yes" : "no");

  // 4. WHY is it unexploitable? Re-run the Protego scenario under the stock
  //    system's winning schedule and render the open(2) decision tree: the
  //    rename still lands inside the window, the victim still opens the
  //    symlink — but the VFS permission walk runs with alice's fsuid and
  //    denies the root-only secret.
  std::printf("\n=== the denied derivation tree (Protego, same schedule) ===\n");
  auto run = protego();
  conc::DetScheduler sched(&run->kernel().tracer());
  sched.set_mode(conc::SchedMode::kFixed);
  sched.set_choices(found.violating.choices);
  run->kernel().set_scheduler(&sched);
  run->kernel().tracer().Clear();  // drop boot-time spans; show only the race
  run->RegisterTasks(sched);
  sched.Run();
  run->kernel().set_scheduler(nullptr);
  (void)run->CheckInvariant();  // reaps the children
  std::printf("%s", run->kernel().tracer().Format().c_str());

  // The race window still exists under Protego — the explorer still schedules
  // the rename inside the check/use gap — but the open fails with EACCES
  // because there is no ambient root privilege for the symlink to borrow.
  return found.violation_found && !none.violation_found && none.exhausted ? 0 : 1;
}
